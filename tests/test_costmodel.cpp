// The paper's analytic cost models, checked against the numbers printed
// in §5 and §6.
#include <gtest/gtest.h>

#include "costmodel/counting_cost.hpp"
#include "costmodel/fib_cost.hpp"
#include "costmodel/maintenance_cost.hpp"
#include "costmodel/mgmt_cost.hpp"

namespace express::costmodel {
namespace {

TEST(FibCost, PerEntryPriceMatchesPaper) {
  // "each 12 byte FIB entry uses 0.066 cents of memory" ($55/MB).
  FibCostParams p;
  const double dollars = p.memory_cost_per_byte * p.bytes_per_entry;
  EXPECT_NEAR(dollars, 0.00066, 0.00004);
}

TEST(FibCost, TenWayConferenceUnderEightCents) {
  // §5.1: k=10 channels, n=10 receivers, h=25 hops, 20 minutes, 1%
  // utilization, 1-year lifetime. Evaluating the paper's own Fig. 6
  // formula gives c_s = 2500 * $0.00066 * 1200/(31536000 * 0.01)
  // = ~$0.0063 — the paper prints $0.075, which is that value times
  // another factor of 12 (the bytes-per-entry applied twice; see
  // EXPERIMENTS.md). Either way the headline claim holds:
  EXPECT_LT(ten_way_conference_cost(), 0.08);  // "less than eight cents"
  EXPECT_NEAR(ten_way_conference_cost(), 0.00628, 0.0005);
  // ... and well under a cent per participant by the formula.
  EXPECT_LT(ten_way_conference_cost() / 10, 0.01);
}

TEST(FibCost, EntryCostScalesLinearlyWithDuration) {
  FibCostParams p;
  EXPECT_NEAR(entry_cost(p, 2400), 2 * entry_cost(p, 1200), 1e-12);
}

TEST(FibCost, StockTickerExample) {
  // §5.1: 100,000 subscribers, ~200,000 entries, held a full year.
  const auto ticker = stock_ticker_cost();
  EXPECT_EQ(ticker.entries, 200'000);
  // 200,000 * $0.00066 / 0.01 = ~$13,200/year.
  EXPECT_NEAR(ticker.yearly_cost, 13'200, 700);
  // A fraction of a dollar per subscriber per year — versus the $1.00
  // per potential viewer per *month* of community cable.
  EXPECT_LT(ticker.cost_per_subscriber, 0.25);
}

TEST(FibCost, WorstCaseEntriesIsStarTopologyBound) {
  EXPECT_EQ(session_entries(1, 100, 25), 2500);
  EXPECT_EQ(session_entries(10, 10, 25), 2500);
}

TEST(MgmtCost, TwoHundredBytesPerChannel) {
  // §5.2: 32B x 3 records x 2 outstanding + 8B key = 200 bytes.
  EXPECT_DOUBLE_EQ(bytes_per_channel(), 200.0);
}

TEST(MgmtCost, ChannelLifetimeCostUnderFiftiethOfACent) {
  // "each channel costs less than 1/50-th of a cent" at $1/MB DRAM.
  const double cost = channel_lifetime_cost();
  EXPECT_LT(cost, 0.01 / 50);
  EXPECT_GT(cost, 0.0);
}

TEST(Maintenance, MillionChannelScenario) {
  // §5.3: 1M channels, 20-minute lifetimes, fanout 2:
  //   receives 4M Counts / 20 min = ~3,333/s; sends half = ~1,667/s;
  //   ~5,000 events/s total; 92 Counts per segment; ~36 segments/s;
  //   ~424 kb/s inbound control bandwidth.
  const auto load = maintenance_load();
  EXPECT_NEAR(load.events_received_per_second, 3333, 1);
  EXPECT_NEAR(load.events_sent_per_second, 1667, 1);
  EXPECT_NEAR(load.total_events_per_second, 5000, 1);
  EXPECT_EQ(static_cast<int>(load.messages_per_segment), 92);
  EXPECT_NEAR(load.segments_received_per_second, 36.2, 0.5);
  EXPECT_NEAR(load.control_bits_received_per_second, 429'000, 8'000);
}

TEST(Maintenance, PaperCpuUtilizationArithmetic) {
  // 4,500 events/s at ~3,500 cycles each on a 400 MHz CPU = ~4%.
  EXPECT_NEAR(cpu_utilization(4500, 3500, 400e6), 0.04, 0.005);
  // 33,000 events/s at ~5,200 cycles = ~43%.
  EXPECT_NEAR(cpu_utilization(33'000, 5200, 400e6), 0.43, 0.01);
}

TEST(Maintenance, LoadScalesLinearlyWithChannels) {
  MaintenanceParams p;
  p.active_channels = 2'000'000;
  const auto doubled = maintenance_load(p);
  const auto base = maintenance_load();
  EXPECT_NEAR(doubled.total_events_per_second,
              2 * base.total_events_per_second, 1e-6);
}

TEST(CountingCost, PollingScalesWithTreeAndRate) {
  PollingParams p;
  p.tree_edges = 1000;
  p.poll_period_seconds = 300;
  const auto load = polling_load(p);
  EXPECT_DOUBLE_EQ(load.messages_per_round, 2000);
  EXPECT_NEAR(load.messages_per_second, 6.67, 0.01);

  PollingParams faster = p;
  faster.poll_period_seconds = 30;
  EXPECT_NEAR(polling_load(faster).messages_per_second, 66.7, 0.1);
}

TEST(CountingCost, MoviePollExample) {
  // §6: a 90-minute movie sampled every 5 minutes -> 18 rounds.
  EXPECT_DOUBLE_EQ(movie_poll_messages(100, 300, 5400), 2 * 100 * 18);
}

}  // namespace
}  // namespace express::costmodel
