// ECMP UDP mode (§3.2): soft state with periodic CountQuery refreshes,
// no report suppression, explicit leave triggering a re-query, and
// expiry of members that die silently.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using workload::make_star;

RouterConfig udp_config() {
  RouterConfig config;
  config.udp_query_interval = sim::seconds(2);
  config.udp_robustness = 2;
  return config;
}

// Star with 1-hop chains: edge router r_i has iface 0 toward the root
// and iface 1 toward its host.
class UdpModeTest : public ::testing::Test {
 protected:
  UdpModeTest() : sim_(make_star(2, 1), udp_config()) {
    channel_ = sim_.source().allocate_channel();
    // routers: [root, r0_0, r1_0]; host-facing iface on the edges is 1.
    sim_.router(1).set_interface_mode(1, ecmp::Mode::kUdp);
    sim_.router(2).set_interface_mode(1, ecmp::Mode::kUdp);
  }
  ExpressNetwork sim_;
  ip::ChannelId channel_;
};

TEST_F(UdpModeTest, RefreshQueriesKeepSubscriptionAlive) {
  sim_.receiver(0).new_subscription(channel_);
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(sim_.router(1).on_tree(channel_));

  // Run well past several refresh intervals: the host answers each
  // query, so the subscription must survive.
  sim_.run_for(sim::seconds(20));
  EXPECT_TRUE(sim_.router(1).on_tree(channel_));
  EXPECT_GT(sim_.receiver(0).stats().queries_answered, 5u);

  sim_.source().send(channel_, 100, 1);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sim_.receiver(0).deliveries().size(), 1u);
}

TEST_F(UdpModeTest, SilentHostExpiresAndTreePrunes) {
  sim_.receiver(0).new_subscription(channel_);
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(sim_.source_router().on_tree(channel_));

  // The host crashes without unsubscribing: refresh queries go
  // unanswered, the soft state expires, and the branch prunes.
  sim_.receiver(0).set_silent(true);
  sim_.run_for(sim::seconds(20));
  EXPECT_FALSE(sim_.router(1).on_tree(channel_));
  EXPECT_FALSE(sim_.source_router().on_tree(channel_));
}

TEST_F(UdpModeTest, ExplicitLeaveTriggersReQuery) {
  sim_.receiver(0).new_subscription(channel_);
  sim_.run_for(sim::seconds(1));
  const auto queries_before = sim_.router(1).stats().queries_sent;

  // IGMPv2-style: a zero Count makes the router immediately re-query
  // the interface before the next periodic round.
  sim_.receiver(0).delete_subscription(channel_);
  sim_.run_for(sim::milliseconds(200));
  EXPECT_GT(sim_.router(1).stats().queries_sent, queries_before);
  EXPECT_FALSE(sim_.router(1).on_tree(channel_));
}

TEST_F(UdpModeTest, NoReportSuppression) {
  // §3.2: "Unlike IGMPv2, but like the proposed IGMPv3, there is no
  // report suppression" — every queried member answers, so the router
  // keeps an exact per-interface count. With one host per interface the
  // observable effect is the exact count surviving refresh rounds.
  sim_.receiver(0).new_subscription(channel_);
  sim_.receiver(0).new_subscription(channel_);  // two local apps
  sim_.run_for(sim::seconds(10));
  EXPECT_EQ(sim_.router(1).subtree_count(channel_), 2);
}

TEST_F(UdpModeTest, RefreshClockRunsDryAfterSilentExpiry) {
  // Regression: the periodic refresh used to re-arm unconditionally,
  // querying dead neighbors forever. Once the silent host's soft state
  // expires and the branch prunes, the refresh clock must run dry —
  // zero post-death refresh sends.
  sim_.receiver(0).new_subscription(channel_);
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(sim_.router(1).on_tree(channel_));
  ASSERT_TRUE(sim_.router(1).udp_refresh_active());

  sim_.receiver(0).set_silent(true);
  sim_.run_for(sim::seconds(20));  // expiry (robustness x interval) + prune
  ASSERT_FALSE(sim_.router(1).on_tree(channel_));
  EXPECT_FALSE(sim_.router(1).udp_refresh_active());

  const auto queries_after_death = sim_.router(1).stats().queries_sent;
  sim_.run_for(sim::seconds(20));
  EXPECT_EQ(sim_.router(1).stats().queries_sent, queries_after_death);
}

TEST_F(UdpModeTest, RefreshClockRunsDryAfterExplicitLeave) {
  sim_.receiver(0).new_subscription(channel_);
  sim_.run_for(sim::seconds(1));
  ASSERT_TRUE(sim_.router(1).udp_refresh_active());

  sim_.receiver(0).delete_subscription(channel_);
  sim_.run_for(sim::seconds(5));  // leave re-query resolves, state drains
  EXPECT_FALSE(sim_.router(1).on_tree(channel_));
  EXPECT_FALSE(sim_.router(1).udp_refresh_active());

  const auto queries_after_leave = sim_.router(1).stats().queries_sent;
  sim_.run_for(sim::seconds(20));
  EXPECT_EQ(sim_.router(1).stats().queries_sent, queries_after_leave);

  // A fresh join re-arms the clock.
  sim_.receiver(0).new_subscription(channel_);
  sim_.run_for(sim::seconds(1));
  EXPECT_TRUE(sim_.router(1).udp_refresh_active());
}

TEST_F(UdpModeTest, TcpInterfacesAreUnaffected) {
  // receiver(1) hangs off router(2); its router-facing side and the
  // core stay in (default) TCP mode: no periodic per-channel queries
  // should hit a TCP-mode subscription's host beyond the initial round.
  ExpressRouter& tcp_edge = sim_.router(2);
  tcp_edge.set_interface_mode(1, ecmp::Mode::kTcp);
  sim_.receiver(1).new_subscription(channel_);
  sim_.run_for(sim::seconds(20));
  EXPECT_TRUE(tcp_edge.on_tree(channel_));
  EXPECT_EQ(sim_.receiver(1).stats().queries_answered, 0u);
  sim_.source().send(channel_, 100, 1);
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sim_.receiver(1).deliveries().size(), 1u);
}

}  // namespace
}  // namespace express::test
