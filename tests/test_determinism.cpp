// End-to-end determinism pin.
//
// The simulator promises bit-for-bit reproducible runs: same seed, same
// scenario => the same events in the same order, hence identical packet
// and byte counters. This test pins the exact counters of a seeded
// churn scenario (16 receivers over a binary router tree, Poisson
// join/leave churn, periodic channel data). Any substrate change — a
// scheduler rewrite, a packet-copy optimization — must reproduce these
// numbers exactly; a diff here means event order changed, which is a
// correctness bug, not a perf tradeoff.
//
// The pinned values were captured at the seed implementation (shared_ptr
// + priority_queue scheduler, deep-copied payloads) and verified
// unchanged by the zero-allocation rewrite.
#include <gtest/gtest.h>

#include <vector>

#include "testbed/testbed.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace express {
namespace {

struct Outcome {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t total_link_bytes = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t data_delivered = 0;
};

Outcome run_seeded_churn(RouterConfig config = {}) {
  Testbed bed(workload::make_kary_tree(2, 3, {}, 2), config);  // 16 receivers
  const ip::ChannelId channel = bed.source().allocate_channel();

  sim::Rng rng(7);
  const sim::Duration horizon = sim::seconds(10);
  const auto events = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count()), horizon,
      sim::seconds(5), sim::seconds(3), rng);

  auto& sched = bed.net().scheduler();
  for (const auto& ev : events) {
    sched.schedule_at(ev.at, [&bed, &channel, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channel);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channel);
      }
    });
  }
  const std::vector<std::uint8_t> header(32, 0x5A);
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(200); at < horizon;
       at += sim::milliseconds(200)) {
    sched.schedule_at(at, [&bed, &channel, &header, s = seq++] {
      bed.source().send(channel, 500, s, header);
    });
  }
  bed.net().run();

  Outcome out;
  out.packets_sent = bed.net().stats().packets_sent;
  out.bytes_sent = bed.net().stats().bytes_sent;
  out.total_link_bytes = bed.net().total_link_bytes();
  out.executed_events = sched.executed_events();
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    out.data_delivered += bed.receiver(i).stats().data_received;
  }
  return out;
}

TEST(Determinism, SeededChurnCountersArePinned) {
  const Outcome out = run_seeded_churn();
  EXPECT_EQ(out.packets_sent, 1082u);
  EXPECT_EQ(out.bytes_sent, 519864u);
  EXPECT_EQ(out.total_link_bytes, 519864u);
  // Event count dropped from 1185 when fan-out batching landed: copies
  // of one replication that arrive at the same instant now share one
  // delivery event. Every wire-observable counter above is unchanged —
  // that equivalence is pinned directly by FanoutBatch tests.
  EXPECT_EQ(out.executed_events, 867u);
  EXPECT_EQ(out.data_delivered, 365u);
}

// Batched TCP mode (§5.3) shares segments between control messages and
// drains via Batcher timers and flush_all — both must be byte-for-byte
// reproducible. flush_all used to iterate an unordered_map, so these
// counters (and the identical-repeat check below) depended on the hash
// implementation.
constexpr std::uint64_t kBatchedPacketsSent = 1083;
constexpr std::uint64_t kBatchedBytesSent = 520948;
// 1281 before fan-out batching; same-arrival copies now share events.
constexpr std::uint64_t kBatchedExecutedEvents = 961;

RouterConfig batched_config() {
  RouterConfig config;
  config.batch_window = sim::milliseconds(10);
  return config;
}

TEST(Determinism, BatchedChurnCountersArePinned) {
  const Outcome out = run_seeded_churn(batched_config());
  EXPECT_EQ(out.packets_sent, kBatchedPacketsSent);
  EXPECT_EQ(out.bytes_sent, kBatchedBytesSent);
  EXPECT_EQ(out.total_link_bytes, kBatchedBytesSent);
  EXPECT_EQ(out.executed_events, kBatchedExecutedEvents);
  EXPECT_EQ(out.data_delivered, 365u);
}

TEST(Determinism, BatchedRunsAreIdentical) {
  const Outcome a = run_seeded_churn(batched_config());
  const Outcome b = run_seeded_churn(batched_config());
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
}

TEST(Determinism, RepeatedRunsAreIdentical) {
  const Outcome a = run_seeded_churn();
  const Outcome b = run_seeded_churn();
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.total_link_bytes, b.total_link_bytes);
  EXPECT_EQ(a.executed_events, b.executed_events);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
}

}  // namespace
}  // namespace express
