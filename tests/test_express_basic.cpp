// Integration tests: the EXPRESS channel model end to end on small
// simulated networks — subscription builds the tree, data follows it,
// the single-source property holds, and counting aggregates correctly.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "helpers.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using workload::make_kary_tree;
using workload::make_line;
using workload::make_star;

TEST(ExpressBasic, SubscribeThenReceive) {
  ExpressNetwork sim(make_star(4, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();

  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(1));

  sim.source().send(ch, 1000, /*sequence=*/1);
  sim.source().send(ch, 1000, /*sequence=*/2);
  sim.run_for(sim::seconds(1));

  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    const auto& d = sim.receiver(i).deliveries();
    ASSERT_EQ(d.size(), 2u) << "receiver " << i;
    EXPECT_EQ(d[0].sequence, 1u);
    EXPECT_EQ(d[1].sequence, 2u);
    EXPECT_EQ(d[0].channel, ch);
    EXPECT_EQ(d[0].bytes, 1000u);
  }
}

TEST(ExpressBasic, NoSubscribersNoDelivery) {
  ExpressNetwork sim(make_star(3, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.source().send(ch, 500, 1);
  sim.run_for(sim::seconds(1));
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    EXPECT_TRUE(sim.receiver(i).deliveries().empty());
  }
  // §3.4: the packet is counted and dropped at the first-hop router.
  EXPECT_EQ(sim.source_router().fib().stats().no_entry_drops, 1u);
}

TEST(ExpressBasic, OnlySubscribersReceive) {
  ExpressNetwork sim(make_star(6, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.receiver(3).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  sim.source().send(ch, 100, 7);
  sim.run_for(sim::seconds(1));
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    const std::size_t expected = (i == 0 || i == 3) ? 1u : 0u;
    EXPECT_EQ(sim.receiver(i).deliveries().size(), expected) << "receiver " << i;
    EXPECT_EQ(sim.receiver(i).stats().unwanted_data, 0u);
  }
}

TEST(ExpressBasic, UnsubscribeStopsDelivery) {
  ExpressNetwork sim(make_line(5));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  sim.source().send(ch, 100, 1);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.receiver(0).deliveries().size(), 1u);

  sim.receiver(0).delete_subscription(ch);
  sim.run_for(sim::seconds(1));
  sim.source().send(ch, 100, 2);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receiver(0).deliveries().size(), 1u);  // nothing new

  // The leave propagated: no router still carries channel state.
  for (std::size_t i = 0; i < sim.router_count(); ++i) {
    EXPECT_FALSE(sim.router(i).on_tree(ch)) << "router " << i;
    EXPECT_EQ(sim.router(i).fib().size(), 0u);
  }
}

TEST(ExpressBasic, ChannelsWithSameDestAreUnrelated) {
  // §2 / Fig. 1: (S,E) and (S',E) are different channels.
  ExpressNetwork sim(make_star(2, 1));
  ExpressHost& other_source = sim.receiver(1);  // acts as S'
  const ip::ChannelId ch{sim.source().address(), ip::Address::single_source(9)};
  const ip::ChannelId other{other_source.address(), ip::Address::single_source(9)};
  ASSERT_EQ(ch.dest, other.dest);

  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));

  other_source.send(other, 100, 55);  // same E, different S
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(sim.receiver(0).deliveries().empty());

  sim.source().send(ch, 100, 56);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.receiver(0).deliveries().size(), 1u);
  EXPECT_EQ(sim.receiver(0).deliveries()[0].sequence, 56u);
}

TEST(ExpressBasic, UnauthorizedSenderCannotInject) {
  // §1 problem three: a third party sending to the channel's E must not
  // reach subscribers. The injected traffic dies at the first router
  // whose FIB has no ((S'', E)) entry.
  ExpressNetwork sim(make_star(3, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < 2; ++i) sim.receiver(i).new_subscription(ch);
  sim.run_for(sim::seconds(1));

  // receiver(2) plays the attacker: blast the Super Bowl address.
  ExpressHost& attacker = sim.receiver(2);
  const ip::ChannelId forged{attacker.address(), ch.dest};
  attacker.send(forged, 4000, 666);
  sim.run_for(sim::seconds(1));

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(sim.receiver(i).deliveries().empty());
    EXPECT_EQ(sim.receiver(i).stats().unwanted_data, 0u);
  }
}

TEST(ExpressBasic, JoinSplicesAtNearestOnTreeRouter) {
  // Fig. 3: a join travels only until it reaches a router already on
  // the distribution tree.
  ExpressNetwork sim(make_kary_tree(2, 3));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  const auto joins_before = sim.source_router().stats().counts_received;

  // Receiver 1 shares the depth-2 parent with receiver 0: its join must
  // splice there and never reach the root.
  sim.receiver(1).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.source_router().stats().counts_received, joins_before);

  sim.source().send(ch, 100, 1);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receiver(0).deliveries().size(), 1u);
  EXPECT_EQ(sim.receiver(1).deliveries().size(), 1u);
}

TEST(ExpressBasic, FibStateMatchesTreeShape) {
  // A binary tree, all 8 leaves subscribed: every router is on the tree
  // exactly once -> FIB entries == router count.
  ExpressNetwork sim(make_kary_tree(2, 3));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.total_fib_entries(), sim.router_count());
  // Without proactive counting the root holds only join-time counts
  // (here: 1 from each of its two children); the precise total comes
  // from a CountQuery (§3.1).
  EXPECT_EQ(sim.source_router().subtree_count(ch), 2);
  std::optional<CountResult> polled;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(5),
                           [&](CountResult r) { polled = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->count, static_cast<std::int64_t>(sim.receiver_count()));
}

TEST(ExpressBasic, SubscriberCountQuery) {
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(1));

  std::optional<CountResult> result;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(5),
                           [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(result->count, static_cast<std::int64_t>(sim.receiver_count()));
}

TEST(ExpressBasic, CountQueryOnEmptyChannelIsZero) {
  ExpressNetwork sim(make_star(2, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  std::optional<CountResult> result;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(2),
                           [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, 0);
}

TEST(ExpressBasic, AppDefinedVoteCollection) {
  // §2.2.1: an Internet TV station polls its subscribers; app-defined
  // countIds reach the applications, which may answer or abstain.
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  const ecmp::CountId vote = ecmp::kAppRangeBegin + 1;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
    if (i % 2 == 0) {
      sim.receiver(i).set_count_handler(vote, [] { return std::int64_t{1}; });
    }
    // odd receivers: no handler -> abstain.
  }
  sim.run_for(sim::seconds(1));

  std::optional<CountResult> result;
  sim.source().count_query(ch, vote, sim::seconds(5),
                           [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, 2);  // receivers 0 and 2 of 4 voted yes
}

TEST(ExpressBasic, NetworkLayerLinkCount) {
  // §3.1: a router-initiated query counting tree links; on a binary
  // tree with all 4 leaves subscribed the tree has 6 router-router
  // links + 4 host links + 1 source link is NOT counted (upstream).
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(1));

  std::optional<CountResult> result;
  sim.source_router().initiate_count(ch, ecmp::kLinkCountId, sim::seconds(5),
                                     [&](CountResult r) { result = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);
  // Links: root->2 children (2) + 4 (depth2) + 4 host links = 10.
  EXPECT_EQ(result->count, 10);

  std::optional<CountResult> routers;
  sim.source_router().initiate_count(ch, ecmp::kRouterCountId, sim::seconds(5),
                                     [&](CountResult r) { routers = r; });
  sim.run_for(sim::seconds(10));
  ASSERT_TRUE(routers.has_value());
  EXPECT_EQ(routers->count, 7);  // 1 + 2 + 4 on-tree routers
}

TEST(ExpressBasic, SubcastReachesOnlySubtree) {
  // §2.1: the source unicasts an encapsulated packet to an on-channel
  // router, which forwards it to the downstream subscribers only.
  ExpressNetwork sim(make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(1));

  // Router index 1 is the left depth-1 router: its subtree is
  // receivers 0 and 1 (leaves of the left half).
  ExpressRouter& mid = sim.router(1);
  ASSERT_TRUE(mid.on_tree(ch));
  sim.source().subcast(ch, sim.net().topology().node(mid.id()).address, 800, 99);
  sim.run_for(sim::seconds(1));

  int delivered = 0;
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    delivered += static_cast<int>(sim.receiver(i).deliveries().size());
  }
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(mid.stats().subcasts_relayed, 1u);
}

TEST(ExpressBasic, SubcastFromNonSourceIsDropped) {
  ExpressNetwork sim(make_star(2, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));

  // receiver(1) attempts to subcast on a channel it does not own.
  ExpressHost& intruder = sim.receiver(1);
  const ip::ChannelId forged{intruder.address(), ch.dest};
  intruder.subcast(forged, sim.net().topology().node(sim.source_router().id()).address,
                   800, 13);
  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(sim.receiver(0).deliveries().empty());
}

TEST(ExpressBasic, ChannelAllocationIsLocalAndUnique) {
  ExpressNetwork sim(make_star(1, 1));
  std::set<ip::ChannelId> seen;
  for (int i = 0; i < 1000; ++i) {
    const ip::ChannelId ch = sim.source().allocate_channel();
    EXPECT_TRUE(ch.valid());
    EXPECT_EQ(ch.source, sim.source().address());
    EXPECT_TRUE(seen.insert(ch).second) << "duplicate at " << i;
  }
}

TEST(ExpressBasic, SourceCannotSendToForeignChannel) {
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId foreign{sim.receiver(0).address(),
                              ip::Address::single_source(1)};
  EXPECT_THROW(sim.source().send(foreign, 10, 1), std::logic_error);
}

TEST(ExpressBasic, MultipleLocalAppsShareOneSubscription) {
  ExpressNetwork sim(make_star(1, 1));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.receiver(0).new_subscription(ch);  // second app on the same host
  sim.run_for(sim::seconds(1));
  // The edge router's per-interface count is exact (2 local apps);
  // without proactive counting the root holds the join-time value
  // (precise root counts come from CountQuery, §3.1).
  ExpressRouter& edge = sim.router(1);
  EXPECT_EQ(edge.subtree_count(ch), 2);
  EXPECT_EQ(sim.source_router().subtree_count(ch), 1);

  std::optional<CountResult> polled;
  sim.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(2),
                           [&](CountResult r) { polled = r; });
  sim.run_for(sim::seconds(5));
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(polled->count, 2);

  sim.receiver(0).delete_subscription(ch);
  sim.run_for(sim::seconds(1));
  sim.source().send(ch, 10, 1);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receiver(0).deliveries().size(), 1u);  // still subscribed

  sim.receiver(0).delete_subscription(ch);
  sim.run_for(sim::seconds(1));
  EXPECT_FALSE(sim.source_router().on_tree(ch));
}

}  // namespace
}  // namespace express::test
