// Unit tests for the count-aggregation engine (§3.1): per-hop timeout
// decrement, inline resolution, child aggregation, and the partial
// replies produced by a round that times out — all against a bare
// scheduler, no network.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "express/counting_engine.hpp"
#include "sim/scheduler.hpp"

namespace express {
namespace {

const ip::ChannelId kCh{ip::Address(10, 0, 0, 1),
                        ip::Address::single_source(1)};
constexpr net::NodeId kParent = 5;

struct Reply {
  net::NodeId requester;
  std::int64_t sum;
  std::uint32_t query_seq;
};

/// A CountingEngine wired to recording callbacks.
struct Harness {
  Harness()
      : engine(scheduler,
               [this](net::NodeId requester, const ip::ChannelId&,
                      ecmp::CountId, std::int64_t sum,
                      std::uint32_t query_seq) {
                 replies.push_back({requester, sum, query_seq});
               },
               [this](const ip::ChannelId&) { ++rechecks; }) {}

  sim::Scheduler scheduler;
  std::vector<Reply> replies;
  int rechecks = 0;
  CountingEngine engine;
};

TEST(CountingEngine, TimeoutDecrementClampsAtFloor) {
  // Normal case: subtract rtt_multiple RTTs.
  EXPECT_EQ(CountingEngine::decremented_timeout(
                sim::seconds(1), sim::milliseconds(10), 2.0),
            sim::milliseconds(980));
  // Deep trees or slow links would drive the budget negative: the 10 ms
  // floor keeps every hop a chance to answer.
  EXPECT_EQ(CountingEngine::decremented_timeout(
                sim::milliseconds(12), sim::milliseconds(10), 2.0),
            sim::milliseconds(10));
  EXPECT_EQ(CountingEngine::decremented_timeout(
                sim::milliseconds(5), sim::milliseconds(100), 2.0),
            sim::milliseconds(10));
}

TEST(CountingEngine, NoChildrenResolvesInline) {
  Harness h;
  std::optional<CountResult> result;
  EXPECT_FALSE(h.engine.start_round(kCh, ecmp::kSubscriberId, sim::seconds(1),
                                    std::nullopt, 1, /*local=*/7,
                                    /*children=*/0,
                                    [&](CountResult r) { result = r; }));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, 7);
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(h.engine.pending_rounds(), 0u);

  // With an upstream requester the inline reply goes there instead.
  EXPECT_FALSE(h.engine.start_round(kCh, ecmp::kSubscriberId, sim::seconds(1),
                                    kParent, 2, 3, 0, nullptr));
  ASSERT_EQ(h.replies.size(), 1u);
  EXPECT_EQ(h.replies[0].requester, kParent);
  EXPECT_EQ(h.replies[0].sum, 3);
  EXPECT_EQ(h.replies[0].query_seq, 2u);
}

TEST(CountingEngine, AbsorbingAllChildrenCompletesTheRound) {
  Harness h;
  ASSERT_TRUE(h.engine.start_round(kCh, ecmp::kSubscriberId, sim::seconds(1),
                                   kParent, 9, /*local=*/1, /*children=*/2,
                                   nullptr));
  EXPECT_EQ(h.engine.pending_rounds(), 1u);
  EXPECT_TRUE(h.engine.absorb(kCh, ecmp::kSubscriberId, 9, 10));
  EXPECT_TRUE(h.replies.empty());  // one child still outstanding
  EXPECT_TRUE(h.engine.absorb(kCh, ecmp::kSubscriberId, 9, 100));

  ASSERT_EQ(h.replies.size(), 1u);
  EXPECT_EQ(h.replies[0].sum, 111);
  EXPECT_EQ(h.engine.pending_rounds(), 0u);
  EXPECT_EQ(h.engine.stats().rounds_completed, 1u);
  EXPECT_EQ(h.engine.stats().rounds_timed_out, 0u);
}

TEST(CountingEngine, TimeoutProducesPartialSumAndRejectsLateReplies) {
  Harness h;
  std::optional<CountResult> result;
  ASSERT_TRUE(h.engine.start_round(kCh, ecmp::kSubscriberId,
                                   sim::milliseconds(100), std::nullopt, 9,
                                   /*local=*/1, /*children=*/2,
                                   [&](CountResult r) { result = r; }));
  EXPECT_TRUE(h.engine.absorb(kCh, ecmp::kSubscriberId, 9, 10));

  // The second child never answers: the timer fires a partial result.
  h.scheduler.run_until(sim::Time{} + sim::seconds(1));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, 11);
  EXPECT_FALSE(result->complete);
  EXPECT_EQ(h.engine.stats().rounds_timed_out, 1u);

  // A straggler reply after the timeout finds no round to join.
  EXPECT_FALSE(h.engine.absorb(kCh, ecmp::kSubscriberId, 9, 100));
  EXPECT_EQ(h.engine.pending_rounds(), 0u);
}

TEST(CountingEngine, DistinctSequencesAreIndependentRounds) {
  Harness h;
  ASSERT_TRUE(h.engine.start_round(kCh, ecmp::kSubscriberId, sim::seconds(1),
                                   kParent, 1, 0, 1, nullptr));
  ASSERT_TRUE(h.engine.start_round(kCh, ecmp::kSubscriberId, sim::seconds(1),
                                   kParent, 2, 0, 1, nullptr));
  EXPECT_EQ(h.engine.pending_rounds(), 2u);
  EXPECT_TRUE(h.engine.absorb(kCh, ecmp::kSubscriberId, 2, 42));
  ASSERT_EQ(h.replies.size(), 1u);
  EXPECT_EQ(h.replies[0].query_seq, 2u);
  EXPECT_EQ(h.replies[0].sum, 42);
  EXPECT_EQ(h.engine.pending_rounds(), 1u);
}

TEST(CountingEngine, ProactiveHoldsUntilValidatedThenRechecks) {
  Harness h;
  counting::CurveParams params;
  h.engine.enable_proactive(kCh, params);
  EXPECT_TRUE(h.engine.proactive_enabled(kCh));

  // Unvalidated upstream: never send now, re-check shortly instead.
  EXPECT_FALSE(h.engine.evaluate(kCh, 5, /*validated_upstream=*/false));
  h.scheduler.run_until(sim::Time{} + sim::seconds(1));
  EXPECT_EQ(h.rechecks, 1);

  // A channel without proactive state never asks to send.
  const ip::ChannelId other{ip::Address(10, 0, 0, 2),
                            ip::Address::single_source(2)};
  EXPECT_FALSE(h.engine.evaluate(other, 5, true));

  // Teardown cancels the recheck timer.
  EXPECT_FALSE(h.engine.evaluate(kCh, 5, false));
  h.engine.erase_channel(kCh);
  EXPECT_FALSE(h.engine.proactive_enabled(kCh));
  h.scheduler.run_until(sim::Time{} + sim::seconds(2));
  EXPECT_EQ(h.rechecks, 1);
}

}  // namespace
}  // namespace express
