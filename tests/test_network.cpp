// Network fabric tests: FIFO links, serialization + propagation timing,
// per-link accounting, unicast transit, drop counters.
#include <gtest/gtest.h>

#include <memory>

#include "testbed/testbed.hpp"
#include "net/impairment.hpp"
#include "net/network.hpp"

namespace express::net {
namespace {

/// Records every delivery with its arrival time.
class Recorder : public Node {
 public:
  Recorder(Network& network, NodeId id) : Node(network, id) {}
  void handle_packet(const Packet& packet, std::uint32_t in_iface) override {
    arrivals.push_back({packet.sequence, network().now(), in_iface});
  }
  struct Arrival {
    std::uint64_t sequence;
    sim::Time at;
    std::uint32_t iface;
  };
  std::vector<Arrival> arrivals;
};

Packet data_packet(ip::Address src, ip::Address dst, std::uint32_t bytes,
                   std::uint64_t seq) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.protocol = ip::Protocol::kUdp;
  p.data_bytes = bytes;
  p.sequence = seq;
  return p;
}

TEST(Network, PropagationPlusSerializationDelay) {
  Topology topo;
  const NodeId a = topo.add_router();
  const NodeId b = topo.add_router();
  // 10 ms delay, 1 Mb/s: a 1000+20 byte packet serializes in 8.16 ms.
  topo.add_link(a, b, sim::milliseconds(10), 1, 1e6);
  Network network(std::move(topo));
  auto& recorder = network.attach<Recorder>(b);
  network.send_to_neighbor(a, b,
                           data_packet(ip::Address(1, 1, 1, 1),
                                       ip::Address(2, 2, 2, 2), 1000, 1));
  network.run();
  ASSERT_EQ(recorder.arrivals.size(), 1u);
  const double expected_s = 0.010 + (1020.0 * 8) / 1e6;
  EXPECT_NEAR(sim::to_seconds(recorder.arrivals[0].at), expected_s, 1e-6);
}

TEST(Network, LinksAreFifoPerDirection) {
  // A big packet followed by a tiny one on the same link: the tiny one
  // must NOT overtake (it was this bug that once reordered a PIM join
  // ahead of the data packet it raced).
  Topology topo;
  const NodeId a = topo.add_router();
  const NodeId b = topo.add_router();
  topo.add_link(a, b, sim::milliseconds(1), 1, 1e6);  // slow link
  Network network(std::move(topo));
  auto& recorder = network.attach<Recorder>(b);
  network.send_to_neighbor(a, b,
                           data_packet(ip::Address(1, 1, 1, 1),
                                       ip::Address(2, 2, 2, 2), 50'000, 1));
  network.send_to_neighbor(a, b,
                           data_packet(ip::Address(1, 1, 1, 1),
                                       ip::Address(2, 2, 2, 2), 10, 2));
  network.run();
  ASSERT_EQ(recorder.arrivals.size(), 2u);
  EXPECT_EQ(recorder.arrivals[0].sequence, 1u);
  EXPECT_EQ(recorder.arrivals[1].sequence, 2u);
  EXPECT_GT(recorder.arrivals[1].at, recorder.arrivals[0].at);
}

TEST(Network, OppositeDirectionsDoNotQueueOnEachOther) {
  Topology topo;
  const NodeId a = topo.add_router();
  const NodeId b = topo.add_router();
  topo.add_link(a, b, sim::milliseconds(1), 1, 1e6);
  Network network(std::move(topo));
  auto& ra = network.attach<Recorder>(a);
  auto& rb = network.attach<Recorder>(b);
  // Saturate a->b; a single b->a packet must be unaffected (full duplex).
  for (int i = 0; i < 10; ++i) {
    network.send_to_neighbor(a, b,
                             data_packet(ip::Address(1, 1, 1, 1),
                                         ip::Address(2, 2, 2, 2), 50'000,
                                         static_cast<std::uint64_t>(i)));
  }
  network.send_to_neighbor(b, a,
                           data_packet(ip::Address(2, 2, 2, 2),
                                       ip::Address(1, 1, 1, 1), 10, 99));
  network.run();
  ASSERT_EQ(ra.arrivals.size(), 1u);
  // ~1 ms + tiny serialization, far less than the a->b queue drain.
  EXPECT_LT(sim::to_seconds(ra.arrivals[0].at), 0.002);
  EXPECT_EQ(rb.arrivals.size(), 10u);
}

TEST(Network, LinkStatsCountPacketsAndBytes) {
  Topology topo;
  const NodeId a = topo.add_router();
  const NodeId b = topo.add_router();
  const LinkId l = topo.add_link(a, b);
  Network network(std::move(topo));
  network.attach<Recorder>(b);
  const Packet p = data_packet(ip::Address(1, 1, 1, 1),
                               ip::Address(2, 2, 2, 2), 100, 1);
  const std::uint32_t size = p.wire_size();
  for (int i = 0; i < 5; ++i) {
    Packet copy = p;
    network.send_to_neighbor(a, b, std::move(copy));
  }
  network.run();
  EXPECT_EQ(network.link_stats(l).packets, 5u);
  EXPECT_EQ(network.link_stats(l).bytes, 5u * size);
  EXPECT_EQ(network.total_link_bytes(), 5u * size);
  EXPECT_EQ(network.stats().packets_sent, 5u);
}

TEST(Network, DownLinkDropsAndCounts) {
  Topology topo;
  const NodeId a = topo.add_router();
  const NodeId b = topo.add_router();
  const LinkId l = topo.add_link(a, b);
  Network network(std::move(topo));
  auto& recorder = network.attach<Recorder>(b);
  network.attach<Recorder>(a);
  network.set_link_up(l, false);
  network.send_to_neighbor(a, b,
                           data_packet(ip::Address(1, 1, 1, 1),
                                       ip::Address(2, 2, 2, 2), 100, 1));
  network.run();
  EXPECT_TRUE(recorder.arrivals.empty());
  EXPECT_EQ(network.stats().packets_dropped_link_down, 1u);
}

TEST(Network, UnicastTransitsWithoutTouchingIntermediateNodes) {
  // a -- m -- b: unicast from a to b's address; m must never see it.
  Topology topo;
  const NodeId a = topo.add_router();
  const NodeId m = topo.add_router();
  const NodeId b = topo.add_router();
  const LinkId l1 = topo.add_link(a, m, sim::milliseconds(2));
  const LinkId l2 = topo.add_link(m, b, sim::milliseconds(3));
  Network network(std::move(topo));
  auto& rm = network.attach<Recorder>(m);
  auto& rb = network.attach<Recorder>(b);
  Packet p = data_packet(network.topology().node(a).address,
                         network.topology().node(b).address, 100, 1);
  network.send_unicast(a, std::move(p));
  network.run();
  EXPECT_TRUE(rm.arrivals.empty());
  ASSERT_EQ(rb.arrivals.size(), 1u);
  EXPECT_GT(sim::to_seconds(rb.arrivals[0].at), 0.005);  // 2+3 ms + ser
  // Both links were charged.
  EXPECT_EQ(network.link_stats(l1).packets, 1u);
  EXPECT_EQ(network.link_stats(l2).packets, 1u);
}

TEST(Network, UnicastToUnknownAddressIsCounted) {
  Topology topo;
  const NodeId a = topo.add_router();
  topo.add_link(a, topo.add_router());
  Network network(std::move(topo));
  Packet p = data_packet(ip::Address(9, 9, 9, 9), ip::Address(8, 8, 8, 8),
                         10, 1);
  network.send_unicast(a, std::move(p));
  network.run();
  EXPECT_EQ(network.stats().packets_dropped_no_route, 1u);
}

TEST(Network, UnicastLoopbackDelivers) {
  Topology topo;
  const NodeId a = topo.add_router();
  topo.add_link(a, topo.add_router());
  Network network(std::move(topo));
  auto& ra = network.attach<Recorder>(a);
  Packet p = data_packet(network.topology().node(a).address,
                         network.topology().node(a).address, 10, 7);
  network.send_unicast(a, std::move(p));
  network.run();
  ASSERT_EQ(ra.arrivals.size(), 1u);
  EXPECT_EQ(ra.arrivals[0].sequence, 7u);
}

/// Records full packet copies so payload-sharing can be inspected.
class PacketRecorder : public Node {
 public:
  PacketRecorder(Network& network, NodeId id) : Node(network, id) {}
  void handle_packet(const Packet& packet, std::uint32_t) override {
    packets.push_back(packet);
  }
  std::vector<Packet> packets;
};

TEST(Packet, CopiesShareOnePayloadBuffer) {
  Packet p = data_packet(ip::Address(1, 1, 1, 1), ip::Address(2, 2, 2, 2), 0, 1);
  p.payload = std::vector<std::uint8_t>{1, 2, 3, 4};
  Packet q = p;
  Packet r = q;
  EXPECT_TRUE(q.payload.shares_buffer_with(p.payload));
  EXPECT_TRUE(r.payload.shares_buffer_with(p.payload));
  const std::vector<std::uint8_t>& bytes = q.payload;
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Packet, MutablePayloadWriteDoesNotAliasSiblings) {
  Packet p = data_packet(ip::Address(1, 1, 1, 1), ip::Address(2, 2, 2, 2), 0, 1);
  p.payload = std::vector<std::uint8_t>{1, 2, 3, 4};
  Packet q = p;  // replication: shares the buffer
  q.mutable_payload()[0] = 0xFF;
  EXPECT_FALSE(q.payload.shares_buffer_with(p.payload));
  EXPECT_EQ(p.payload.bytes()[0], 1u);  // sibling untouched
  EXPECT_EQ(q.payload.bytes()[0], 0xFFu);
}

TEST(Packet, UniquelyOwnedPayloadMutatesInPlace) {
  Packet p = data_packet(ip::Address(1, 1, 1, 1), ip::Address(2, 2, 2, 2), 0, 1);
  p.payload = std::vector<std::uint8_t>{1, 2, 3, 4};
  const std::uint8_t* before = p.payload.bytes().data();
  p.mutable_payload()[0] = 9;  // no other owner: no clone
  EXPECT_EQ(p.payload.bytes().data(), before);
  EXPECT_EQ(p.payload.bytes()[0], 9u);
}

TEST(Packet, EmptyPayloadsDoNotClaimSharing) {
  Packet p;
  Packet q;
  EXPECT_FALSE(p.payload.shares_buffer_with(q.payload));
  EXPECT_TRUE(p.payload.empty());
}

TEST(Network, FanOutDeliveriesShareOnePayloadBuffer) {
  // Replicating one packet to three neighbors (the router fan-out
  // pattern) must deliver three packets aliasing a single byte buffer —
  // replication cost is O(copies), not O(copies * payload bytes).
  Topology topo;
  const NodeId a = topo.add_router();
  const NodeId b = topo.add_router();
  const NodeId c = topo.add_router();
  const NodeId d = topo.add_router();
  for (NodeId n : {b, c, d}) topo.add_link(a, n, sim::milliseconds(1), 1, 1e9);
  Network network(std::move(topo));
  auto& rb = network.attach<PacketRecorder>(b);
  auto& rc = network.attach<PacketRecorder>(c);
  auto& rd = network.attach<PacketRecorder>(d);
  Packet p = data_packet(ip::Address(1, 1, 1, 1), ip::Address(2, 2, 2, 2), 0, 1);
  p.payload = std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF};
  for (NodeId n : {b, c, d}) network.send_to_neighbor(a, n, p);
  network.run();
  ASSERT_EQ(rb.packets.size(), 1u);
  ASSERT_EQ(rc.packets.size(), 1u);
  ASSERT_EQ(rd.packets.size(), 1u);
  // All three deliveries — and the original — alias the same bytes.
  EXPECT_TRUE(rb.packets[0].payload.shares_buffer_with(p.payload));
  EXPECT_TRUE(rc.packets[0].payload.shares_buffer_with(p.payload));
  EXPECT_TRUE(rd.packets[0].payload.shares_buffer_with(p.payload));
  // And a receiver that writes detaches only itself.
  rb.packets[0].mutable_payload()[0] = 0;
  EXPECT_FALSE(rb.packets[0].payload.shares_buffer_with(p.payload));
  EXPECT_TRUE(rc.packets[0].payload.shares_buffer_with(p.payload));
  EXPECT_EQ(p.payload.bytes()[0], 0xDEu);
}

TEST(Network, WireSizeIncludesEncapsulation) {
  Packet inner = data_packet(ip::Address(1, 1, 1, 1),
                             ip::Address(232, 0, 0, 1), 100, 1);
  const std::uint32_t inner_size = inner.wire_size();
  EXPECT_EQ(inner_size, 20u + 100u);
  Packet outer;
  outer.protocol = ip::Protocol::kIpInIp;
  outer.inner = std::make_shared<Packet>(inner);
  EXPECT_EQ(outer.wire_size(), 20u + inner_size);
}

// ---------------------------------------------------------------------
// Link impairment model
// ---------------------------------------------------------------------

namespace {

/// Two routers, one 1 ms / 1 Gb/s link, `count` UDP data packets a->b.
struct ImpairRig {
  explicit ImpairRig() {
    Topology topo;
    a = topo.add_router();
    b = topo.add_router();
    link = topo.add_link(a, b, sim::milliseconds(1), 1, 1e9);
    network = std::make_unique<Network>(std::move(topo));
    recorder = &network->attach<Recorder>(b);
  }
  void send(std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) {
      network->send_to_neighbor(a, b,
                                data_packet(ip::Address(1, 1, 1, 1),
                                            ip::Address(2, 2, 2, 2), 500, i));
    }
    network->run();
  }
  NodeId a, b;
  LinkId link;
  std::unique_ptr<Network> network;
  Recorder* recorder = nullptr;
};

ImpairmentConfig bernoulli(double p) {
  ImpairmentConfig config;
  config.loss.kind = LossModel::Kind::kBernoulli;
  config.loss.p = p;
  return config;
}

}  // namespace

TEST(Network, DisarmedImpairmentsLeaveTrafficUntouched) {
  // Seeding alone must not arm anything: zero random draws, identical
  // counters to a network that never heard of impairments (pinned
  // traces depend on this).
  ImpairRig plain;
  plain.send(50);
  ImpairRig seeded;
  seeded.network->seed_impairments(123);
  seeded.send(50);
  EXPECT_EQ(seeded.recorder->arrivals.size(), plain.recorder->arrivals.size());
  EXPECT_EQ(seeded.network->stats().bytes_sent, plain.network->stats().bytes_sent);
  EXPECT_EQ(seeded.network->stats().packets_dropped_loss, 0u);
  EXPECT_EQ(seeded.network->stats().packets_reordered, 0u);
}

TEST(Network, BernoulliLossIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    ImpairRig rig;
    rig.network->set_link_impairments(rig.link, bernoulli(0.3));
    rig.network->seed_impairments(seed);
    rig.send(200);
    return std::pair(rig.network->stats().packets_dropped_loss,
                     rig.recorder->arrivals.size());
  };
  const auto first = run(7);
  EXPECT_GT(first.first, 0u);
  EXPECT_EQ(first.first + first.second, 200u);  // every packet lands or drops
  EXPECT_EQ(run(7), first);  // same seed => identical loss pattern
}

TEST(Network, LostPacketsStillConsumeWireTime) {
  // Loss happens after the FIFO slot is reserved: a surviving packet
  // arrives at exactly the time it would have in a lossless run, so
  // arming loss cannot perturb the timing of what does get through.
  ImpairRig clean;
  clean.send(40);
  ImpairRig lossy;
  lossy.network->set_link_impairments(lossy.link, bernoulli(0.5));
  lossy.network->seed_impairments(99);
  lossy.send(40);
  ASSERT_GT(lossy.recorder->arrivals.size(), 0u);
  ASSERT_LT(lossy.recorder->arrivals.size(), 40u);
  for (const auto& arrival : lossy.recorder->arrivals) {
    EXPECT_EQ(arrival.at, clean.recorder->arrivals.at(arrival.sequence).at);
  }
}

TEST(Network, GilbertBurstLossDropsAndStaysDeterministic) {
  auto run = [] {
    ImpairRig rig;
    ImpairmentConfig config;
    config.loss.kind = LossModel::Kind::kGilbert;
    config.loss.gilbert_enter_bad = 0.2;
    config.loss.gilbert_exit_bad = 0.3;
    config.loss.gilbert_loss_bad = 1.0;
    rig.network->set_link_impairments(rig.link, config);
    rig.network->seed_impairments(5);
    rig.send(300);
    return rig.network->stats().packets_dropped_loss;
  };
  const std::uint64_t losses = run();
  EXPECT_GT(losses, 0u);
  EXPECT_EQ(run(), losses);
}

TEST(Network, ReorderDelaysByTheConfiguredWindow) {
  ImpairRig rig;
  ImpairmentConfig config;
  config.reorder_p = 1.0;  // every data packet takes the detour
  config.reorder_window = sim::milliseconds(5);
  rig.network->set_link_impairments(rig.link, config);
  rig.network->seed_impairments(11);
  ImpairRig clean;
  clean.send(10);
  rig.send(10);
  ASSERT_EQ(rig.recorder->arrivals.size(), 10u);
  EXPECT_EQ(rig.network->stats().packets_reordered, 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rig.recorder->arrivals[i].at,
              clean.recorder->arrivals[i].at + sim::milliseconds(5));
  }
}

TEST(Network, DataOnlyImpairmentsSpareControlTraffic) {
  // data_only (the default) models §3.2: ECMP control runs over
  // TCP-mode connections, so the loss dice only touch channel data.
  ImpairRig rig;
  rig.network->set_link_impairments(rig.link, bernoulli(1.0));
  rig.network->seed_impairments(3);
  Packet control;
  control.src = ip::Address(1, 1, 1, 1);
  control.dst = ip::Address(2, 2, 2, 2);
  control.protocol = ip::Protocol::kEcmp;
  control.sequence = 77;
  rig.network->send_to_neighbor(rig.a, rig.b, control);
  rig.send(5);  // all five UDP data packets die
  ASSERT_EQ(rig.recorder->arrivals.size(), 1u);
  EXPECT_EQ(rig.recorder->arrivals[0].sequence, 77u);
  EXPECT_EQ(rig.network->stats().packets_dropped_loss, 5u);
}

}  // namespace
}  // namespace express::net
