// Proactive counting end to end (§6): routers push Count updates
// upstream per the error-tolerance curve, so the root's estimate tracks
// the true membership without polling.
#include <gtest/gtest.h>

#include "helpers.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using workload::make_kary_tree;

RouterConfig proactive_config(double alpha, double tau_seconds = 5.0) {
  RouterConfig config;
  config.proactive = counting::CurveParams{0.3, tau_seconds, alpha};
  return config;
}

TEST(Proactive, RootConvergesWithinTau) {
  ExpressNetwork sim(make_kary_tree(2, 3), proactive_config(4.0));
  const ip::ChannelId ch = sim.source().allocate_channel();
  // Staggered joins: 8 receivers, one every 100 ms.
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.net().scheduler().schedule_at(
        sim::milliseconds(static_cast<std::int64_t>(100 * i)),
        [&sim, &ch, i]() { sim.receiver(i).new_subscription(ch); });
  }
  sim.run_for(sim::seconds(1));
  // After a quiet period of at least tau, every pending drift has been
  // flushed: the root's estimate equals the true membership.
  sim.run_for(sim::seconds(6));
  EXPECT_EQ(sim.source_router().subtree_count(ch),
            static_cast<std::int64_t>(sim.receiver_count()));
}

TEST(Proactive, TracksDeparturesToo) {
  ExpressNetwork sim(make_kary_tree(2, 3), proactive_config(4.0));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(7));
  ASSERT_EQ(sim.source_router().subtree_count(ch), 8);

  for (std::size_t i = 0; i < 5; ++i) {
    sim.receiver(i).delete_subscription(ch);
  }
  sim.run_for(sim::seconds(7));
  EXPECT_EQ(sim.source_router().subtree_count(ch), 3);
}

TEST(Proactive, LargeChangesPropagateQuickly) {
  // A burst that doubles the membership exceeds e_max and must reach
  // the root in network time, not curve time.
  ExpressNetwork sim(make_kary_tree(2, 3), proactive_config(4.0, 60.0));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.source_router().subtree_count(ch), 1);

  for (std::size_t i = 1; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  // Well under tau = 60 s, yet the estimate is already close: every
  // router saw a > e_max relative jump and pushed immediately.
  sim.run_for(sim::seconds(2));
  EXPECT_GE(sim.source_router().subtree_count(ch), 6);
}

TEST(Proactive, TighterAlphaSendsMoreUpdates) {
  // Fig. 8's tradeoff: alpha = 4 tracks more closely and costs more
  // messages than alpha = 2.5 on the same workload.
  auto run = [](double alpha) {
    ExpressNetwork sim(make_kary_tree(2, 3), proactive_config(alpha, 30.0));
    const ip::ChannelId ch = sim.source().allocate_channel();
    sim::Rng rng(99);
    // Slow trickle of many small changes (25 app-level subscriptions
    // per host) so relative errors stay below e_max and the curve, not
    // the immediate-send path, governs.
    for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
      for (int k = 0; k < 25; ++k) {
        const auto join_at = sim::seconds_f(rng.uniform() * 60);
        const auto leave_at = sim::seconds_f(60 + rng.uniform() * 60);
        sim.net().scheduler().schedule_at(join_at, [&sim, &ch, i]() {
          sim.receiver(i).new_subscription(ch);
        });
        sim.net().scheduler().schedule_at(leave_at, [&sim, &ch, i]() {
          sim.receiver(i).delete_subscription(ch);
        });
      }
    }
    sim.run_for(sim::seconds(150));
    std::uint64_t updates = 0;
    for (std::size_t i = 0; i < sim.router_count(); ++i) {
      updates += sim.router(i).stats().proactive_updates_sent;
    }
    return updates;
  };
  const std::uint64_t tight = run(4.0);
  const std::uint64_t loose = run(2.5);
  EXPECT_GT(tight, loose);
}

TEST(Proactive, QuiescentChannelSendsNothing) {
  ExpressNetwork sim(make_kary_tree(2, 2), proactive_config(4.0));
  const ip::ChannelId ch = sim.source().allocate_channel();
  for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
    sim.receiver(i).new_subscription(ch);
  }
  sim.run_for(sim::seconds(10));  // converged and quiet
  std::uint64_t counts_before = 0;
  for (std::size_t i = 0; i < sim.router_count(); ++i) {
    counts_before += sim.router(i).stats().counts_sent;
  }
  sim.run_for(sim::seconds(60));  // long quiet period
  std::uint64_t counts_after = 0;
  for (std::size_t i = 0; i < sim.router_count(); ++i) {
    counts_after += sim.router(i).stats().counts_sent;
  }
  // No drift -> no proactive traffic at all.
  EXPECT_EQ(counts_after, counts_before);
}

}  // namespace
}  // namespace express::test
