// Unit tests for the proactive-counting error-tolerance curve (Fig. 7)
// and the per-router proactive decision state.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "counting/error_curve.hpp"

namespace express::counting {
namespace {

TEST(ErrorCurve, DivergesNearZero) {
  // Immediately after an update the curve tolerates even large drift —
  // that is what batches burst arrivals (the crossing time for a drift
  // e is tau * exp(-alpha*e/e_max), sub-second for large e).
  ErrorCurve c(CurveParams{0.3, 120, 4});
  EXPECT_TRUE(std::isinf(c.tolerance(0)));
  EXPECT_GT(c.tolerance(1e-9), 1.0);  // ~1.9: even 190% drift waits a beat
  // At dt = tau * e^(-alpha) the curve passes through e_max.
  EXPECT_NEAR(c.tolerance(120 * std::exp(-4.0)), 0.3, 1e-9);
}

TEST(ErrorCurve, XInterceptAtTau) {
  // tau is "the maximum delay until any change is transmitted upstream".
  ErrorCurve c(CurveParams{0.3, 120, 4});
  EXPECT_DOUBLE_EQ(c.tolerance(120), 0.0);
  EXPECT_DOUBLE_EQ(c.tolerance(500), 0.0);
}

TEST(ErrorCurve, MonotonicallyDecreasing) {
  ErrorCurve c(CurveParams{0.3, 120, 4});
  double prev = c.tolerance(0.1);
  for (double dt = 1; dt <= 120; dt += 1) {
    const double tol = c.tolerance(dt);
    EXPECT_LE(tol, prev + 1e-12) << "dt=" << dt;
    prev = tol;
  }
}

TEST(ErrorCurve, LargerAlphaIsTighter) {
  // Fig. 7: alpha controls decay without changing e_max; alpha = 4
  // tolerates less error than alpha = 2.5 at every dt, hence tracks
  // the true count more closely (Fig. 8).
  ErrorCurve tight(CurveParams{0.3, 120, 4});
  ErrorCurve loose(CurveParams{0.3, 120, 2.5});
  for (double dt = 3; dt < 120; dt += 3) {
    EXPECT_LT(tight.tolerance(dt), loose.tolerance(dt) + 1e-12) << "dt=" << dt;
  }
  // Same maximum tolerance and same x-intercept.
  EXPECT_DOUBLE_EQ(tight.tolerance(0), loose.tolerance(0));
  EXPECT_DOUBLE_EQ(tight.tolerance(120), loose.tolerance(120));
}

TEST(ErrorCurve, TimeUntilSendInvertsTolerance) {
  ErrorCurve c(CurveParams{0.3, 120, 4});
  for (double err : {0.01, 0.05, 0.1, 0.2, 0.29}) {
    const double dt = c.time_until_send(err);
    EXPECT_NEAR(c.tolerance(dt), err, 1e-9) << "err=" << err;
  }
}

TEST(ErrorCurve, TimeUntilSendEdgeCases) {
  ErrorCurve c(CurveParams{0.3, 120, 4});
  // At e = e_max the crossing is tau * e^(-alpha) ~ 2.2 s.
  EXPECT_NEAR(c.time_until_send(0.3), 120 * std::exp(-4.0), 1e-9);
  // Large errors cross almost immediately (sub-millisecond here).
  EXPECT_LT(c.time_until_send(1.0), 0.01);
  EXPECT_DOUBLE_EQ(c.time_until_send(0.0), 120.0);  // no drift: wait tau
  EXPECT_DOUBLE_EQ(c.time_until_send(-1.0), 120.0);
  // Monotone: bigger drift is due sooner.
  EXPECT_LT(c.time_until_send(0.2), c.time_until_send(0.1));
}

TEST(RelativeError, Definition) {
  // §4.1: drift relative to what was advertised upstream —
  // e_rel = |current - advertised| / |advertised|.
  EXPECT_DOUBLE_EQ(relative_error(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(100, 110), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 1.0 / 11.0);
  EXPECT_DOUBLE_EQ(relative_error(100, 50), 0.5);
  EXPECT_DOUBLE_EQ(relative_error(5, 0), 1.0);  // drained to zero: 100% drift
  EXPECT_TRUE(std::isinf(relative_error(0, 5)));  // from zero: unbounded
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
}

TEST(RelativeError, SymmetricAroundAdvertised) {
  // Shrinking by delta reads exactly like growing by delta. The old
  // min(|advertised|, |current|) denominator reported 100 -> 80 as
  // 20/80 = 0.25 while 100 -> 120 read 20/100 = 0.2, so shrinking
  // counts systematically over-triggered proactive updates.
  EXPECT_DOUBLE_EQ(relative_error(100, 80), 0.2);
  EXPECT_DOUBLE_EQ(relative_error(100, 120), 0.2);
  EXPECT_DOUBLE_EQ(relative_error(100, 80), relative_error(100, 120));
}

TEST(RelativeError, BoundaryAndSignPinning) {
  // Pin the §4.1 curve's edges: the repair-round convergence report in
  // bench_reliable feeds round-over-round NACK totals straight through
  // this function, so the boundary behavior is load-bearing there too.
  // advertised == current short-circuits before the zero test:
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
  // Any transition *from* zero is unbounded (the parent thought the
  // subtree was empty), independent of sign or magnitude:
  EXPECT_TRUE(std::isinf(relative_error(0, 1)));
  EXPECT_TRUE(std::isinf(relative_error(0, -1)));
  EXPECT_GT(relative_error(0, 5), 0.0);  // +inf compares greater
  // Negative counts (aggregates can go negative transiently during
  // reannounce races) measure drift by absolute values:
  EXPECT_DOUBLE_EQ(relative_error(-4, -2), 0.5);
  EXPECT_DOUBLE_EQ(relative_error(-4, -4), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(4, -4), 2.0);
  EXPECT_DOUBLE_EQ(relative_error(-4, 4), 2.0);
  // Sign-flip symmetry: |current - advertised| sees the full swing.
  EXPECT_DOUBLE_EQ(relative_error(10, -10), relative_error(-10, 10));
}

TEST(ProactiveState, ShrinkingCountNoLongerOverTriggers) {
  // The over-trigger scenario pinned end-to-end: a 100 -> 78 drop is
  // 22% drift, but the old denominator read it as 22/78 ~ 28.2%. At
  // dt = 15 s the curve (e_max 0.3, tau 120, alpha 2.5) tolerates
  // 0.12 * ln(120/15) ~ 24.9% — between the two readings, so the old
  // code fired an update the paper's definition holds back.
  ProactiveState s(CurveParams{0.3, 120, 2.5});
  s.mark_sent(100, sim::seconds(0));
  EXPECT_FALSE(s.should_send(78, sim::seconds(15)));  // old code: true
  // The equally-sized growth behaves identically.
  EXPECT_FALSE(s.should_send(122, sim::seconds(15)));
  // Both still flush once the curve decays below 22% (dt > ~19.2 s).
  EXPECT_TRUE(s.should_send(78, sim::seconds(30)));
  EXPECT_TRUE(s.should_send(122, sim::seconds(30)));
}

TEST(ProactiveState, FirstNonZeroSendsImmediately) {
  ProactiveState s(CurveParams{0.3, 120, 4});
  EXPECT_FALSE(s.should_send(0, sim::seconds(0)));
  EXPECT_TRUE(s.should_send(1, sim::seconds(0)));
}

TEST(ProactiveState, SmallDriftWaitsLargeDriftSendsSoon) {
  ProactiveState s(CurveParams{0.3, 120, 4});
  s.mark_sent(100, sim::seconds(0));
  // 1% drift: tolerated until dt = 120 * exp(-4 * 0.01/0.3) ~ 105 s.
  EXPECT_FALSE(s.should_send(101, sim::seconds(10)));
  EXPECT_TRUE(s.should_send(101, sim::seconds(110)));
  // 50% drift (> e_max): sent immediately.
  EXPECT_TRUE(s.should_send(150, sim::seconds(1)));
}

TEST(ProactiveState, NextSendDelayMatchesCurveCrossing) {
  ProactiveState s(CurveParams{0.3, 120, 4});
  s.mark_sent(100, sim::seconds(0));
  auto delay = s.next_send_delay(110, sim::seconds(0));
  ASSERT_TRUE(delay.has_value());
  // err = 0.1 -> due at dt* = 120 * exp(-4/3) ~ 31.6 s.
  EXPECT_NEAR(sim::to_seconds(*delay), 120 * std::exp(-4.0 / 3.0), 0.01);
  auto later = s.next_send_delay(110, sim::seconds(20));
  ASSERT_TRUE(later.has_value());
  EXPECT_NEAR(sim::to_seconds(*later), sim::to_seconds(*delay) - 20, 0.01);
  // Past the crossing the remaining delay clamps at zero.
  auto overdue = s.next_send_delay(110, sim::seconds(100));
  ASSERT_TRUE(overdue.has_value());
  EXPECT_DOUBLE_EQ(sim::to_seconds(*overdue), 0.0);
  // The crossing is never later than tau, so any change flushes by tau.
  auto tiny = s.next_send_delay(101, sim::seconds(0));
  ASSERT_TRUE(tiny.has_value());
  EXPECT_LE(sim::to_seconds(*tiny), 120.0);
}

TEST(ProactiveState, NoDriftNoCheck) {
  ProactiveState s(CurveParams{0.3, 120, 4});
  s.mark_sent(100, sim::seconds(0));
  EXPECT_FALSE(s.next_send_delay(100, sim::seconds(50)).has_value());
  EXPECT_FALSE(s.should_send(100, sim::seconds(400)));
}

TEST(ProactiveState, AnyChangeSentByTau) {
  // Even a one-subscriber drift must be reported within tau seconds.
  ProactiveState s(CurveParams{0.3, 120, 4});
  s.mark_sent(1000, sim::seconds(0));
  // err = 0.001 is tolerated until dt* = 120*exp(-4*0.001/0.3) ~ 118.4s.
  EXPECT_FALSE(s.should_send(1001, sim::seconds(100)));
  EXPECT_TRUE(s.should_send(1001, sim::seconds(119)));
  EXPECT_TRUE(s.should_send(1001, sim::seconds(121)));
}

}  // namespace
}  // namespace express::counting
