// Unit tests for topology bookkeeping and unicast (RPF) routing.
#include <gtest/gtest.h>

#include "net/routing.hpp"
#include "net/topology.hpp"

namespace express::net {
namespace {

TEST(Topology, NodesGetDistinctAddresses) {
  Topology t;
  const NodeId a = t.add_router();
  const NodeId b = t.add_host();
  EXPECT_NE(t.node(a).address, t.node(b).address);
  EXPECT_EQ(t.node(a).kind, NodeKind::kRouter);
  EXPECT_EQ(t.node(b).kind, NodeKind::kHost);
}

TEST(Topology, LinkCreatesInterfacesOnBothEnds) {
  Topology t;
  const NodeId a = t.add_router();
  const NodeId b = t.add_router();
  const LinkId l = t.add_link(a, b);
  EXPECT_EQ(t.interface_count(a), 1u);
  EXPECT_EQ(t.interface_count(b), 1u);
  EXPECT_EQ(t.peer(l, a), b);
  EXPECT_EQ(t.peer(l, b), a);
  EXPECT_EQ(t.interface_on(a, l), 0u);
  EXPECT_EQ(t.interface_to(a, b), 0u);
  EXPECT_EQ(t.neighbor_via(a, 0), b);
}

TEST(Topology, InterfaceIndicesAreSequential) {
  Topology t;
  const NodeId hub = t.add_router();
  for (int i = 0; i < 5; ++i) {
    const NodeId spoke = t.add_router();
    t.add_link(hub, spoke);
    EXPECT_EQ(t.interface_to(hub, spoke), static_cast<std::uint32_t>(i));
  }
}

TEST(Topology, NeighborsSkipDownLinks) {
  Topology t;
  const NodeId a = t.add_router();
  const NodeId b = t.add_router();
  const NodeId c = t.add_router();
  const LinkId ab = t.add_link(a, b);
  t.add_link(a, c);
  EXPECT_EQ(t.neighbors(a).size(), 2u);
  t.set_link_up(ab, false);
  const auto n = t.neighbors(a);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], c);
}

TEST(Topology, FindByAddress) {
  Topology t;
  const NodeId a = t.add_router();
  EXPECT_EQ(t.find_by_address(t.node(a).address), a);
  EXPECT_FALSE(t.find_by_address(ip::Address(1, 2, 3, 4)).has_value());
}

class LineRouting : public ::testing::Test {
 protected:
  //  0 -- 1 -- 2 -- 3 -- 4
  LineRouting() {
    for (int i = 0; i < 5; ++i) ids_.push_back(topo_.add_router());
    for (int i = 0; i < 4; ++i) {
      links_.push_back(topo_.add_link(ids_[static_cast<std::size_t>(i)],
                                      ids_[static_cast<std::size_t>(i + 1)],
                                      sim::milliseconds(i + 1)));
    }
  }
  Topology topo_;
  std::vector<NodeId> ids_;
  std::vector<LinkId> links_;
};

TEST_F(LineRouting, ShortestPathAlongLine) {
  UnicastRouting r(topo_);
  EXPECT_EQ(r.next_hop(0, 4), 1u);
  EXPECT_EQ(r.next_hop(4, 0), 3u);
  EXPECT_EQ(r.cost(0, 4), 4u);
  EXPECT_EQ(r.hop_count(0, 4), 4u);
  const auto p = r.path(0, 4);
  EXPECT_EQ(p, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST_F(LineRouting, PathDelaySumsLinkDelays) {
  UnicastRouting r(topo_);
  // 1 + 2 + 3 + 4 ms.
  EXPECT_EQ(r.path_delay(0, 4), sim::milliseconds(10));
}

TEST_F(LineRouting, SelfRouting) {
  UnicastRouting r(topo_);
  EXPECT_FALSE(r.next_hop(2, 2).has_value());
  EXPECT_EQ(r.cost(2, 2), 0u);
  EXPECT_EQ(r.path(2, 2), std::vector<NodeId>{2});
}

TEST_F(LineRouting, LinkFailurePartitions) {
  topo_.set_link_up(links_[1], false);  // cut 1--2
  UnicastRouting r(topo_);
  EXPECT_FALSE(r.next_hop(0, 4).has_value());
  EXPECT_FALSE(r.cost(0, 4).has_value());
  EXPECT_TRUE(r.path(0, 4).empty());
  EXPECT_EQ(r.cost(0, 1), 1u);  // near side still works
  EXPECT_EQ(r.cost(2, 4), 2u);  // far side still works
}

TEST_F(LineRouting, RecomputeBumpsVersion) {
  UnicastRouting r(topo_);
  const auto v = r.version();
  r.recompute();
  EXPECT_GT(r.version(), v);
}

TEST(Routing, PrefersLowerCostOverFewerHops) {
  // 0 --(cost 10)-- 1 ;  0 -- 2 -- 1 with cost 1 each.
  Topology t;
  const NodeId n0 = t.add_router();
  const NodeId n1 = t.add_router();
  const NodeId n2 = t.add_router();
  t.add_link(n0, n1, sim::milliseconds(1), /*cost=*/10);
  t.add_link(n0, n2, sim::milliseconds(1), 1);
  t.add_link(n2, n1, sim::milliseconds(1), 1);
  UnicastRouting r(t);
  EXPECT_EQ(r.next_hop(n0, n1), n2);
  EXPECT_EQ(r.cost(n0, n1), 2u);
  EXPECT_EQ(r.hop_count(n0, n1), 2u);
}

TEST(Routing, EqualCostTieBreaksDeterministically) {
  // Diamond: 0 -- {1, 2} -- 3, all cost 1. Both runs must agree.
  Topology t;
  const NodeId n0 = t.add_router();
  const NodeId n1 = t.add_router();
  const NodeId n2 = t.add_router();
  const NodeId n3 = t.add_router();
  t.add_link(n0, n1);
  t.add_link(n0, n2);
  t.add_link(n1, n3);
  t.add_link(n2, n3);
  UnicastRouting a(t);
  UnicastRouting b(t);
  EXPECT_EQ(a.next_hop(n0, n3), b.next_hop(n0, n3));
  // Tie-break prefers the numerically smaller first hop.
  EXPECT_EQ(a.next_hop(n0, n3), n1);
}

TEST(Routing, RpfInterfaceMatchesNextHop) {
  Topology t;
  const NodeId r0 = t.add_router();
  const NodeId r1 = t.add_router();
  const NodeId src = t.add_host();
  t.add_link(r0, r1);
  t.add_link(r1, src);
  UnicastRouting r(t);
  EXPECT_EQ(r.rpf_neighbor(r0, src), r1);
  EXPECT_EQ(r.rpf_interface(r0, src), t.interface_to(r0, r1));
  EXPECT_EQ(r.rpf_neighbor(r1, src), src);
}

TEST(Routing, PathIsCostMonotone) {
  // Property: along any path(), remaining cost strictly decreases.
  Topology t;
  std::vector<NodeId> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(t.add_router());
  // A braided ladder with some chords.
  for (int i = 0; i + 1 < 12; ++i) {
    t.add_link(ids[static_cast<std::size_t>(i)],
               ids[static_cast<std::size_t>(i + 1)]);
  }
  t.add_link(ids[0], ids[5], sim::milliseconds(1), 2);
  t.add_link(ids[3], ids[9], sim::milliseconds(1), 3);
  UnicastRouting r(t);
  for (NodeId from = 0; from < 12; ++from) {
    for (NodeId to = 0; to < 12; ++to) {
      const auto p = r.path(from, to);
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        EXPECT_GT(r.cost(p[i], to).value(), r.cost(p[i + 1], to).value());
      }
    }
  }
}

}  // namespace
}  // namespace express::net
