// Unit tests for the FIB: Fig. 5 packed format, fast-path lookup
// semantics (exact (S,E) match + RPF interface check), and drop
// accounting.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "express/fib.hpp"
#include "net/interface_set.hpp"
#include "sim/random.hpp"

namespace express {
namespace {

ip::ChannelId channel(std::uint32_t host, std::uint32_t index) {
  return ip::ChannelId{ip::Address{0x0A000000u + host},
                       ip::Address::single_source(index)};
}

TEST(PackedFib, EntryIsTwelveBytes) {
  // Fig. 5: | source 32 | dest 24 | iif | oifs 32 | = 12 bytes.
  static_assert(sizeof(PackedFibEntry) == 12);
  EXPECT_EQ(sizeof(PackedFibEntry), 12u);
}

TEST(PackedFib, PackUnpackRoundTrip) {
  FibEntry e;
  e.iif = 7;
  e.oifs.set(0);
  e.oifs.set(13);
  e.oifs.set(31);
  const auto ch = channel(1, 0x00ABCDEF);
  auto packed = pack(ch, e);
  ASSERT_TRUE(packed.has_value());
  auto [ch2, e2] = unpack(*packed);
  EXPECT_EQ(ch2, ch);
  EXPECT_EQ(e2.iif, e.iif);
  EXPECT_TRUE(e2.oifs == e.oifs);
}

TEST(PackedFib, RejectsOutOfBudgetEntries) {
  FibEntry wide;
  wide.iif = 0;
  wide.oifs.set(32);  // beyond the 32-interface hardware budget
  EXPECT_FALSE(pack(channel(1, 1), wide).has_value());

  FibEntry high_iif;
  high_iif.iif = 32;
  EXPECT_FALSE(pack(channel(1, 1), high_iif).has_value());

  FibEntry ok;
  ok.iif = 31;
  ok.oifs.set(31);
  EXPECT_TRUE(pack(channel(1, 1), ok).has_value());

  // Non-single-source destinations cannot be packed (24-bit dest field).
  FibEntry e;
  ip::ChannelId bad{ip::Address(10, 0, 0, 1), ip::Address(225, 0, 0, 1)};
  EXPECT_FALSE(pack(bad, e).has_value());
}

TEST(Fib, LookupRequiresExactChannelMatch) {
  // §2: (S,E) and (S',E) are unrelated despite the shared E.
  Fib fib;
  FibEntry& e = fib.upsert(channel(1, 5));
  e.iif = 0;
  e.oifs.set(1);
  EXPECT_NE(fib.lookup(channel(1, 5), 0), nullptr);
  EXPECT_EQ(fib.lookup(channel(2, 5), 0), nullptr);  // same E, other S
  EXPECT_EQ(fib.stats().no_entry_drops, 1u);
}

TEST(Fib, RpfCheckDropsWrongInterface) {
  Fib fib;
  FibEntry& e = fib.upsert(channel(1, 5));
  e.iif = 3;
  e.oifs.set(1);
  EXPECT_EQ(fib.lookup(channel(1, 5), 0), nullptr);
  EXPECT_EQ(fib.stats().rpf_drops, 1u);
  EXPECT_NE(fib.lookup(channel(1, 5), 3), nullptr);
  EXPECT_EQ(fib.stats().hits, 1u);
  EXPECT_EQ(fib.stats().lookups, 2u);
}

TEST(Fib, NoEntryPacketsAreCountedAndDropped) {
  // §3.4: unlike PIM-SM/DVMRP there is no rendezvous forwarding or
  // flooding — a miss is just counted.
  Fib fib;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fib.lookup(channel(9, static_cast<std::uint32_t>(i)), 0), nullptr);
  }
  EXPECT_EQ(fib.stats().no_entry_drops, 10u);
  EXPECT_EQ(fib.stats().hits, 0u);
}

TEST(Fib, EraseRemovesEntry) {
  Fib fib;
  fib.upsert(channel(1, 1));
  EXPECT_EQ(fib.size(), 1u);
  fib.erase(channel(1, 1));
  EXPECT_EQ(fib.size(), 0u);
  EXPECT_EQ(fib.find(channel(1, 1)), nullptr);
}

TEST(Fib, PackedBytesMatchesEntryCount) {
  Fib fib;
  for (std::uint32_t i = 0; i < 100; ++i) fib.upsert(channel(1, i));
  EXPECT_EQ(fib.packed_bytes(), 1200u);  // 100 entries * 12 bytes
}

TEST(Fib, FindDoesNotInflateHitStats) {
  // Regression: the RPF-check path probes the table with find() (twice,
  // in the worst case: once for the subcast relay check, once for the
  // audit) before the forwarding lookup() runs. hits must count once
  // per lookup(), never per probe.
  Fib fib;
  FibEntry& e = fib.upsert(channel(1, 5));
  e.iif = 2;
  e.oifs.set(1);
  ASSERT_NE(fib.find(channel(1, 5)), nullptr);
  ASSERT_NE(static_cast<const Fib&>(fib).find(channel(1, 5)), nullptr);
  EXPECT_EQ(fib.stats().hits, 0u);
  EXPECT_EQ(fib.stats().lookups, 0u);
  EXPECT_NE(fib.lookup(channel(1, 5), 2), nullptr);
  EXPECT_EQ(fib.stats().hits, 1u);
  EXPECT_EQ(fib.stats().lookups, 1u);
}

TEST(FlatFib, BackwardShiftDeletionKeepsChainsProbeable) {
  // Dense sequential keys build long probe chains; deleting every other
  // entry exercises the backward-shift path. Every survivor must stay
  // findable and every deleted key must miss (a stale shift would
  // orphan chain members behind the hole).
  Fib fib;
  for (std::uint32_t i = 0; i < 500; ++i) fib.upsert(channel(3, i)).iif = i;
  for (std::uint32_t i = 0; i < 500; i += 2) fib.erase(channel(3, i));
  EXPECT_EQ(fib.size(), 250u);
  for (std::uint32_t i = 0; i < 500; ++i) {
    const FibEntry* e = fib.find(channel(3, i));
    if (i % 2 == 0) {
      EXPECT_EQ(e, nullptr) << "deleted key " << i << " still found";
    } else {
      ASSERT_NE(e, nullptr) << "live key " << i << " lost";
      EXPECT_EQ(e->iif, i);
    }
  }
}

TEST(FlatFib, RandomOpsMatchUnorderedMapReference) {
  // Property test: a random insert/erase/find workload against a
  // std::unordered_map reference model, through several growth rounds
  // and heavy deletion (backward shift + dense swap-remove).
  Fib fib;
  std::unordered_map<ip::ChannelId, FibEntry> model;
  sim::Rng rng(0xF1B);
  constexpr std::uint32_t kHosts = 4;
  constexpr std::uint32_t kIndices = 400;
  for (int op = 0; op < 30000; ++op) {
    const auto ch = channel(1 + rng.below(kHosts), rng.below(kIndices));
    switch (rng.below(4)) {
      case 0:
      case 1: {  // upsert, biased so the table actually fills
        const std::uint32_t iif = rng.below(32);
        const std::uint32_t oif = rng.below(64);
        FibEntry& e = fib.upsert(ch);
        e.iif = iif;
        e.oifs.set(oif);
        FibEntry& m = model[ch];
        m.iif = iif;
        m.oifs.set(oif);
        break;
      }
      case 2: {
        fib.erase(ch);
        model.erase(ch);
        break;
      }
      case 3: {
        const FibEntry* got = fib.find(ch);
        auto it = model.find(ch);
        if (it == model.end()) {
          EXPECT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr);
          EXPECT_EQ(got->iif, it->second.iif);
          EXPECT_TRUE(got->oifs == it->second.oifs);
        }
        break;
      }
    }
    if (op % 5000 == 4999) {  // periodic full cross-check
      ASSERT_EQ(fib.size(), model.size());
      for (const auto& [mch, mentry] : model) {
        const FibEntry* got = fib.find(mch);
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(got->iif, mentry.iif);
        EXPECT_TRUE(got->oifs == mentry.oifs);
      }
      for (const auto& [fch, fentry] : fib.entries()) {
        EXPECT_EQ(model.count(fch), 1u);
      }
    }
  }
  EXPECT_EQ(fib.size(), model.size());
}

TEST(FlatFib, IterationOrderIsDeterministic) {
  // entries() order is a pure function of the op history: two tables
  // fed the identical sequence must agree element for element.
  Fib a;
  Fib b;
  sim::Rng rng(77);
  std::vector<std::pair<bool, ip::ChannelId>> ops;
  for (int i = 0; i < 2000; ++i) {
    ops.emplace_back(rng.below(3) != 0, channel(1, rng.below(150)));
  }
  for (const auto& [insert, ch] : ops) {
    if (insert) {
      a.upsert(ch);
      b.upsert(ch);
    } else {
      a.erase(ch);
      b.erase(ch);
    }
  }
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_EQ(a.entries()[i].first, b.entries()[i].first);
  }
}

TEST(InterfaceSet, SetClearTest) {
  net::InterfaceSet s;
  EXPECT_TRUE(s.empty());
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(200);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(200));
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.count(), 4u);
  s.clear(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(InterfaceSet, ForEachAscending) {
  net::InterfaceSet s;
  s.set(5);
  s.set(70);
  s.set(2);
  std::vector<std::uint32_t> seen;
  s.for_each([&](std::uint32_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{2, 5, 70}));
}

TEST(InterfaceSet, FitsIn32) {
  net::InterfaceSet s;
  s.set(31);
  EXPECT_TRUE(s.fits_in_32());
  EXPECT_EQ(s.low32(), 1u << 31);
  s.set(32);
  EXPECT_FALSE(s.fits_in_32());
}

TEST(InterfaceSet, EqualityIgnoresTrailingZeros) {
  net::InterfaceSet a, b;
  a.set(100);
  a.clear(100);
  EXPECT_TRUE(a == b);
  a.set(3);
  b.set(3);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace express
