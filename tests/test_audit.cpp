// InvariantAuditor (src/audit): a quiescent EXPRESS network passes all
// four tree invariants; an in-flight control message is visible as a
// transient disagreement; and each class of deliberately injected
// corruption is caught by exactly the check built for it.
#include <gtest/gtest.h>

#include <optional>

#include "audit/invariants.hpp"
#include "helpers.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using audit::AuditReport;
using audit::Check;
using audit::InvariantAuditor;

AuditReport run_audit(ExpressNetwork& sim) {
  return InvariantAuditor(sim.net()).run();
}

/// A settled tree with every receiver subscribed — the fixture the
/// corruption tests start from.
struct SettledTree {
  SettledTree() : sim(workload::make_kary_tree(2, 2)) {
    ch = sim.source().allocate_channel();
    for (std::size_t i = 0; i < sim.receiver_count(); ++i) {
      sim.receiver(i).new_subscription(ch);
    }
    sim.run_for(sim::seconds(2));
  }

  /// First on-tree router whose upstream is another router (a mid/leaf
  /// router, never the tree root).
  ExpressRouter& interior_router() {
    for (std::size_t i = 0; i < sim.router_count(); ++i) {
      ExpressRouter& r = sim.router(i);
      const Channel* state = r.subscriptions().find(ch);
      if (state == nullptr || state->upstream == net::kInvalidNode) continue;
      if (sim.net().topology().node(state->upstream).kind ==
          net::NodeKind::kRouter) {
        return r;
      }
    }
    ADD_FAILURE() << "no interior on-tree router";
    return sim.router(0);
  }

  /// An on-tree router with a *host* downstream entry (a leaf router).
  ExpressRouter& leaf_router() {
    for (std::size_t i = 0; i < sim.router_count(); ++i) {
      ExpressRouter& r = sim.router(i);
      const Channel* state = r.subscriptions().find(ch);
      if (state == nullptr) continue;
      for (const auto& [neighbor, entry] : state->downstream) {
        if (sim.net().topology().node(neighbor).kind == net::NodeKind::kHost) {
          return r;
        }
      }
    }
    ADD_FAILURE() << "no on-tree leaf router";
    return sim.router(0);
  }

  ExpressNetwork sim;
  ip::ChannelId ch;
};

TEST(Audit, CleanAtQuiescence) {
  SettledTree t;
  const AuditReport report = run_audit(t.sim);
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.routers_audited, t.sim.router_count());
  EXPECT_GT(report.channels_audited, 0u);
  EXPECT_GT(report.edges_checked, 0u);
}

TEST(Audit, CleanAfterChurnSettles) {
  sim::Rng rng(7);
  ExpressNetwork sim(workload::make_transit_stub(4, 2, 2, rng));
  const ip::ChannelId ch = sim.source().allocate_channel();
  const auto schedule = workload::poisson_churn(
      static_cast<std::uint32_t>(sim.receiver_count()), sim::seconds(20),
      sim::seconds(6), sim::seconds(3), rng);
  for (const auto& ev : schedule) {
    sim.net().scheduler().schedule_at(ev.at, [&sim, ev, ch] {
      if (ev.join) {
        sim.receiver(ev.host_index).new_subscription(ch);
      } else {
        sim.receiver(ev.host_index).delete_subscription(ch);
      }
    });
  }
  sim.run_for(sim::seconds(25));
  const AuditReport report = run_audit(sim);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

// The auditor is only meaningful between events; sampled *mid-join*, the
// leaf has advertised a count the parent has not yet received, and the
// conservation check reports exactly that disagreement.
TEST(Audit, SeesInFlightJoinAsDisagreement) {
  ExpressNetwork sim(workload::make_kary_tree(2, 2));
  const ip::ChannelId ch = sim.source().allocate_channel();
  sim.receiver(0).new_subscription(ch);
  // Edge (host->leaf) links are 1 ms, core links 5 ms: at t = 2 ms the
  // leaf router has processed the join, its Count to the parent is
  // still on the wire.
  sim.run_for(sim::milliseconds(2));
  const AuditReport mid = run_audit(sim);
  EXPECT_FALSE(mid.clean());
  EXPECT_GE(mid.count(Check::kCountConservation), 1u);

  sim.run_for(sim::seconds(1));
  EXPECT_TRUE(run_audit(sim).clean());
}

TEST(Audit, DetectsAdvertisedCountMismatch) {
  SettledTree t;
  Channel* state =
      t.interior_router().corrupt_subscriptions_for_test().find(t.ch);
  ASSERT_NE(state, nullptr);
  state->advertised_upstream += 3;

  const AuditReport report = run_audit(t.sim);
  EXPECT_GE(report.count(Check::kCountConservation), 1u) << report.to_string();
}

TEST(Audit, DetectsHostCountMismatch) {
  SettledTree t;
  ExpressRouter& leaf = t.leaf_router();
  Channel* state = leaf.corrupt_subscriptions_for_test().find(t.ch);
  ASSERT_NE(state, nullptr);
  for (auto& [neighbor, entry] : state->downstream) {
    if (t.sim.net().topology().node(neighbor).kind == net::NodeKind::kHost) {
      entry.count += 1;  // claims 2 apps; the host has 1
      break;
    }
  }

  const AuditReport report = run_audit(t.sim);
  EXPECT_GE(report.count(Check::kCountConservation), 1u) << report.to_string();
}

TEST(Audit, DetectsRpfViolation) {
  SettledTree t;
  ExpressRouter& victim = t.interior_router();
  Channel* state = victim.corrupt_subscriptions_for_test().find(t.ch);
  ASSERT_NE(state, nullptr);
  // Point the upstream at some other router that is not the RPF
  // neighbor toward the source.
  const net::NodeId real_upstream = state->upstream;
  std::optional<net::NodeId> wrong;
  for (std::size_t i = 0; i < t.sim.router_count(); ++i) {
    const net::NodeId id = t.sim.roles().routers[i];
    if (id != real_upstream && &t.sim.router(i) != &victim) {
      wrong = id;
      break;
    }
  }
  ASSERT_TRUE(wrong.has_value());
  state->upstream = *wrong;

  const AuditReport report = run_audit(t.sim);
  EXPECT_GE(report.count(Check::kRpfConsistency), 1u) << report.to_string();
}

TEST(Audit, DetectsZeroSubtreeOrphan) {
  SettledTree t;
  Channel* state = t.leaf_router().corrupt_subscriptions_for_test().find(t.ch);
  ASSERT_NE(state, nullptr);
  for (auto& [neighbor, entry] : state->downstream) entry.count = 0;

  const AuditReport report = run_audit(t.sim);
  EXPECT_GE(report.count(Check::kOrphanState), 1u) << report.to_string();
}

TEST(Audit, DetectsOrphanFibEntry) {
  SettledTree t;
  ExpressRouter& leaf = t.leaf_router();
  ASSERT_NE(leaf.fib().find(t.ch), nullptr);
  // Membership evaporates; the FIB entry lingers.
  leaf.corrupt_subscriptions_for_test().erase(t.ch);

  const AuditReport report = run_audit(t.sim);
  EXPECT_GE(report.count(Check::kOrphanState), 1u) << report.to_string();
}

TEST(Audit, DetectsForwardingLoop) {
  SettledTree t;
  // Make an interior router and its (router) upstream point at each
  // other: a two-node cycle no walk toward the source can escape.
  ExpressRouter& child = t.interior_router();
  Channel* child_state = child.corrupt_subscriptions_for_test().find(t.ch);
  ASSERT_NE(child_state, nullptr);
  const net::NodeId parent_id = child_state->upstream;
  std::optional<net::NodeId> child_id;
  ExpressRouter* parent = nullptr;
  for (std::size_t i = 0; i < t.sim.router_count(); ++i) {
    if (&t.sim.router(i) == &child) child_id = t.sim.roles().routers[i];
    if (t.sim.roles().routers[i] == parent_id) parent = &t.sim.router(i);
  }
  ASSERT_NE(parent, nullptr);
  ASSERT_TRUE(child_id.has_value());
  Channel* parent_state = parent->corrupt_subscriptions_for_test().find(t.ch);
  ASSERT_NE(parent_state, nullptr);
  parent_state->upstream = *child_id;

  const AuditReport report = run_audit(t.sim);
  EXPECT_GE(report.count(Check::kForwardingLoop), 1u) << report.to_string();
}

TEST(Audit, ReportFormattingNamesEveryCheck) {
  EXPECT_STREQ(audit::check_name(Check::kCountConservation),
               "count_conservation");
  EXPECT_STREQ(audit::check_name(Check::kRpfConsistency), "rpf_consistency");
  EXPECT_STREQ(audit::check_name(Check::kOrphanState), "orphan_state");
  EXPECT_STREQ(audit::check_name(Check::kForwardingLoop), "forwarding_loop");

  AuditReport report;
  report.violations.push_back(audit::Violation{
      Check::kRpfConsistency, 3, ip::ChannelId{}, "wrong upstream"});
  const std::string text = report.to_string();
  EXPECT_NE(text.find("rpf_consistency"), std::string::npos);
  EXPECT_NE(text.find("wrong upstream"), std::string::npos);
  EXPECT_EQ(report.count(Check::kRpfConsistency), 1u);
  EXPECT_EQ(report.count(Check::kOrphanState), 0u);
}

}  // namespace
}  // namespace express::test
