// Property suites for the baseline protocols, parameterized over seeds:
// whatever the topology and membership pattern, members receive the
// stream and non-members' applications see nothing.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "baseline/cbt.hpp"
#include "baseline/dvmrp.hpp"
#include "baseline/group_host.hpp"
#include "baseline/pim_sm.hpp"
#include "net/network.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

const ip::Address kGroup(226, 4, 4, 4);
constexpr int kPackets = 5;

struct Harness {
  workload::GeneratedTopology roles;
  std::unique_ptr<net::Network> network;
  baseline::GroupHost* source = nullptr;
  std::vector<baseline::GroupHost*> receivers;

  void attach_hosts() {
    source = &network->attach<baseline::GroupHost>(roles.source_host);
    for (net::NodeId id : roles.receiver_hosts) {
      receivers.push_back(&network->attach<baseline::GroupHost>(id));
    }
  }
};

/// Run the common scenario; returns per-receiver delivered sequence sets.
std::vector<std::set<std::uint64_t>> run_scenario(Harness& h,
                                                  ip::Protocol control,
                                                  const std::vector<bool>& member) {
  for (std::size_t i = 0; i < h.receivers.size(); ++i) {
    if (member[i]) h.receivers[i]->join_group(kGroup, control);
  }
  h.network->run_until(sim::seconds(2));
  for (int p = 1; p <= kPackets; ++p) {
    h.source->send_to_group(kGroup, 400, static_cast<std::uint64_t>(p));
    h.network->run_until(h.network->now() + sim::seconds(1));
  }
  std::vector<std::set<std::uint64_t>> delivered(h.receivers.size());
  for (std::size_t i = 0; i < h.receivers.size(); ++i) {
    for (const auto& d : h.receivers[i]->deliveries()) {
      delivered[i].insert(d.sequence);
    }
  }
  return delivered;
}

void check_delivery(const std::vector<std::set<std::uint64_t>>& delivered,
                    const std::vector<bool>& member,
                    bool allow_duplicates_suppressed = true) {
  (void)allow_duplicates_suppressed;
  for (std::size_t i = 0; i < delivered.size(); ++i) {
    if (member[i]) {
      EXPECT_EQ(delivered[i].size(), static_cast<std::size_t>(kPackets))
          << "member " << i << " missing packets";
    } else {
      EXPECT_TRUE(delivered[i].empty()) << "non-member " << i << " leaked";
    }
  }
}

std::vector<bool> random_membership(std::size_t n, sim::Rng& rng) {
  std::vector<bool> member(n, false);
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    member[i] = rng.chance(0.5);
    any |= member[i];
  }
  if (!any) member[0] = true;
  return member;
}

class BaselineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineProperty, DvmrpDeliversToMembersOnly) {
  sim::Rng rng(GetParam());
  Harness h;
  h.roles = workload::make_kary_tree(2, 3);
  auto roles_copy = h.roles;
  h.network = std::make_unique<net::Network>(std::move(roles_copy.topology));
  for (net::NodeId r : h.roles.routers) {
    h.network->attach<baseline::DvmrpRouter>(r);
  }
  h.attach_hosts();
  const auto member = random_membership(h.receivers.size(), rng);
  check_delivery(run_scenario(h, ip::Protocol::kIgmp, member), member);
}

TEST_P(BaselineProperty, PimSmDeliversToMembersOnly) {
  sim::Rng rng(GetParam() * 31 + 7);
  Harness h;
  h.roles = workload::make_kary_tree(2, 3);
  baseline::PimConfig config;
  // Random RP placement each seed: correctness must not depend on it.
  config.rp = h.roles.topology
                  .node(h.roles.routers[rng.below(
                      static_cast<std::uint32_t>(h.roles.routers.size()))])
                  .address;
  config.spt_switchover = rng.chance(0.5);
  auto roles_copy = h.roles;
  h.network = std::make_unique<net::Network>(std::move(roles_copy.topology));
  for (net::NodeId r : h.roles.routers) {
    h.network->attach<baseline::PimSmRouter>(r, config);
  }
  h.attach_hosts();
  const auto member = random_membership(h.receivers.size(), rng);
  check_delivery(run_scenario(h, ip::Protocol::kPim, member), member);
}

TEST_P(BaselineProperty, CbtDeliversToMembersOnly) {
  sim::Rng rng(GetParam() * 977 + 13);
  Harness h;
  h.roles = workload::make_kary_tree(2, 3);
  baseline::CbtConfig config;
  config.core = h.roles.topology
                    .node(h.roles.routers[rng.below(
                        static_cast<std::uint32_t>(h.roles.routers.size()))])
                    .address;
  auto roles_copy = h.roles;
  h.network = std::make_unique<net::Network>(std::move(roles_copy.topology));
  for (net::NodeId r : h.roles.routers) {
    h.network->attach<baseline::CbtRouter>(r, config);
  }
  h.attach_hosts();
  const auto member = random_membership(h.receivers.size(), rng);
  check_delivery(run_scenario(h, ip::Protocol::kCbt, member), member);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace express::test
