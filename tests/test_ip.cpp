// Unit tests for IPv4 addressing, the single-source range, channel ids,
// and the IP header codec.
#include <gtest/gtest.h>

#include "ip/address.hpp"
#include "ip/channel.hpp"
#include "ip/header.hpp"

namespace express::ip {
namespace {

TEST(Address, ParseValid) {
  auto a = Address::parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0x0A010203u);
  EXPECT_EQ(a->to_string(), "10.1.2.3");
}

TEST(Address, ParseBoundaries) {
  EXPECT_EQ(Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Address::parse(""));
  EXPECT_FALSE(Address::parse("1.2.3"));
  EXPECT_FALSE(Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Address::parse("256.1.1.1"));
  EXPECT_FALSE(Address::parse("1.2.3.x"));
  EXPECT_FALSE(Address::parse("1..2.3"));
  EXPECT_FALSE(Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Address::parse("-1.2.3.4"));
}

TEST(Address, MulticastClassD) {
  EXPECT_TRUE(Address(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Address(239, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Address(223, 255, 255, 255).is_multicast());
  EXPECT_FALSE(Address(240, 0, 0, 0).is_multicast());
}

TEST(Address, SingleSourceRangeIs232Slash8) {
  // Paper Fig. 2: 2^24 class D addresses at 232/8.
  EXPECT_TRUE(Address(232, 0, 0, 0).is_single_source());
  EXPECT_TRUE(Address(232, 255, 255, 255).is_single_source());
  EXPECT_FALSE(Address(231, 255, 255, 255).is_single_source());
  EXPECT_FALSE(Address(233, 0, 0, 0).is_single_source());
  EXPECT_TRUE(Address(232, 1, 2, 3).is_multicast());
}

TEST(Address, AdminScopedAndLinkLocal) {
  EXPECT_TRUE(Address(239, 1, 2, 3).is_admin_scoped());
  EXPECT_FALSE(Address(238, 1, 2, 3).is_admin_scoped());
  EXPECT_TRUE(Address(224, 0, 0, 5).is_link_local_multicast());
  EXPECT_FALSE(Address(224, 0, 1, 5).is_link_local_multicast());
  EXPECT_TRUE(kEcmpAllRouters.is_link_local_multicast());
}

TEST(Address, SingleSourceConstructorAndIndex) {
  const Address e = Address::single_source(0x00ABCDEF);
  EXPECT_TRUE(e.is_single_source());
  EXPECT_EQ(e.channel_index(), 0x00ABCDEFu);
  // Index masked to 24 bits.
  EXPECT_EQ(Address::single_source(0xFFFFFFFF).channel_index(), 0x00FFFFFFu);
}

TEST(Address, ChannelSpaceConstants) {
  // Paper: 2^24 channels per host; 2^28 shared class D addresses.
  EXPECT_EQ(kChannelsPerHost, 1ull << 24);
  EXPECT_EQ(kClassDAddresses, 1ull << 28);
}

TEST(Address, UnicastClassification) {
  EXPECT_TRUE(Address(10, 0, 0, 1).is_unicast());
  EXPECT_FALSE(Address(224, 0, 0, 1).is_unicast());
  EXPECT_FALSE(Address{}.is_unicast());
}

TEST(Channel, ValidityRequiresUnicastSourceAndSingleSourceDest) {
  const Address s(10, 0, 0, 1);
  EXPECT_TRUE((ChannelId{s, Address::single_source(5)}).valid());
  EXPECT_FALSE((ChannelId{s, Address(225, 0, 0, 5)}).valid());
  EXPECT_FALSE((ChannelId{Address(224, 0, 0, 1), Address::single_source(5)}).valid());
}

TEST(Channel, IdentityIsThePair) {
  // Paper §2: (S,E) and (S',E) are unrelated channels.
  const Address e = Address::single_source(1);
  const ChannelId a{Address(10, 0, 0, 1), e};
  const ChannelId b{Address(10, 0, 0, 2), e};
  EXPECT_NE(a, b);
  EXPECT_NE(std::hash<ChannelId>{}(a), std::hash<ChannelId>{}(b));
  const ChannelId a2{Address(10, 0, 0, 1), e};
  EXPECT_EQ(a, a2);
  EXPECT_EQ(std::hash<ChannelId>{}(a), std::hash<ChannelId>{}(a2));
}

TEST(Header, EncodeDecodeRoundTrip) {
  Header h;
  h.source = Address(10, 1, 1, 1);
  h.dest = Address(232, 0, 0, 7);
  h.protocol = Protocol::kEcmp;
  h.ttl = 17;
  h.payload_length = 1000;
  h.identification = 0xBEEF;
  const auto bytes = h.encode();
  ASSERT_EQ(bytes.size(), Header::kSize);
  const auto parsed = Header::decode(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->source, h.source);
  EXPECT_EQ(parsed->dest, h.dest);
  EXPECT_EQ(parsed->protocol, h.protocol);
  EXPECT_EQ(parsed->ttl, h.ttl);
  EXPECT_EQ(parsed->payload_length, h.payload_length);
  EXPECT_EQ(parsed->identification, h.identification);
}

TEST(Header, ChecksumDetectsCorruption) {
  Header h;
  h.source = Address(10, 1, 1, 1);
  h.dest = Address(232, 0, 0, 7);
  auto bytes = h.encode();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupted = bytes;
    corrupted[i] ^= 0x01;
    EXPECT_FALSE(Header::decode(corrupted)) << "flip at byte " << i;
  }
}

TEST(Header, DecodeRejectsTruncated) {
  Header h;
  auto bytes = h.encode();
  bytes.pop_back();
  EXPECT_FALSE(Header::decode(bytes));
  EXPECT_FALSE(Header::decode({}));
}

TEST(Header, InternetChecksumKnownVector) {
  // RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Header, ChecksumHandlesOddLength) {
  const std::uint8_t data[] = {0xAB};
  // 0xAB00 summed; complement is 0x54FF.
  EXPECT_EQ(internet_checksum(data), 0x54FF);
}

}  // namespace
}  // namespace express::ip
