// Baseline group-model protocols: DVMRP broadcast-and-prune, PIM-SM
// rendezvous trees, CBT bidirectional cores — the comparison points the
// paper argues EXPRESS improves on.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/cbt.hpp"
#include "baseline/dvmrp.hpp"
#include "baseline/group_host.hpp"
#include "baseline/pim_sm.hpp"
#include "net/network.hpp"
#include "workload/topo_gen.hpp"

namespace express::test {
namespace {

using baseline::CbtConfig;
using baseline::CbtRouter;
using baseline::DvmrpRouter;
using baseline::GroupHost;
using baseline::PimConfig;
using baseline::PimSmRouter;

const ip::Address kGroup(225, 1, 2, 3);

/// Wire a generated topology with baseline routers of type R.
template <typename R, typename... Args>
struct BaselineNet {
  explicit BaselineNet(workload::GeneratedTopology generated, Args... args)
      : roles(std::move(generated)),
        network(std::make_unique<net::Network>(std::move(roles.topology))) {
    for (net::NodeId r : roles.routers) {
      routers.push_back(&network->attach<R>(r, args...));
    }
    source = &network->attach<GroupHost>(roles.source_host);
    for (net::NodeId h : roles.receiver_hosts) {
      receivers.push_back(&network->attach<GroupHost>(h));
    }
  }
  void run_for(sim::Duration d) { network->run_until(network->now() + d); }

  workload::GeneratedTopology roles;
  std::unique_ptr<net::Network> network;
  std::vector<R*> routers;
  GroupHost* source = nullptr;
  std::vector<GroupHost*> receivers;
};

// ---------------------------------------------------------------- DVMRP

TEST(Dvmrp, FloodsThenDelivers) {
  BaselineNet<DvmrpRouter> sim(workload::make_kary_tree(2, 2));
  sim.receivers[0]->join_group(kGroup);
  sim.receivers[3]->join_group(kGroup);
  sim.run_for(sim::seconds(1));
  sim.source->send_to_group(kGroup, 100, 1);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receivers[0]->deliveries().size(), 1u);
  EXPECT_EQ(sim.receivers[3]->deliveries().size(), 1u);
  EXPECT_TRUE(sim.receivers[1]->deliveries().empty());
  EXPECT_TRUE(sim.receivers[2]->deliveries().empty());
}

TEST(Dvmrp, EveryRouterHoldsStateAfterFlood) {
  // The scalability problem: even routers with zero subscribers hold
  // (S,G) state once the flood reaches them.
  BaselineNet<DvmrpRouter> sim(workload::make_kary_tree(2, 3));
  sim.receivers[0]->join_group(kGroup);
  sim.run_for(sim::seconds(1));
  sim.source->send_to_group(kGroup, 100, 1);
  sim.run_for(sim::seconds(1));
  std::size_t with_state = 0;
  for (auto* r : sim.routers) {
    if (r->state_entries() > 0) ++with_state;
  }
  // All 15 routers saw the flood; only 4 are on the useful path.
  EXPECT_EQ(with_state, sim.routers.size());
}

TEST(Dvmrp, PrunesStopOffTreeTraffic) {
  BaselineNet<DvmrpRouter> sim(workload::make_kary_tree(2, 2));
  sim.receivers[0]->join_group(kGroup);
  sim.run_for(sim::seconds(1));
  // First packet floods everywhere and triggers prunes.
  sim.source->send_to_group(kGroup, 100, 1);
  sim.run_for(sim::seconds(1));
  std::uint64_t flood_after_first = 0;
  for (auto* r : sim.routers) flood_after_first += r->stats().flood_copies;
  // Subsequent packets follow only the pruned tree.
  for (int i = 2; i <= 5; ++i) {
    sim.source->send_to_group(kGroup, 100, static_cast<std::uint64_t>(i));
    sim.run_for(sim::seconds(1));
  }
  std::uint64_t flood_total = 0;
  std::uint64_t prunes = 0;
  for (auto* r : sim.routers) {
    flood_total += r->stats().flood_copies;
    prunes += r->stats().prunes_sent;
  }
  EXPECT_GT(prunes, 0u);
  // Per-packet flood cost dropped sharply after pruning: each of the
  // four later packets costs fewer speculative copies than the first.
  const double per_packet_after =
      static_cast<double>(flood_total - flood_after_first) / 4.0;
  EXPECT_LT(per_packet_after, static_cast<double>(flood_after_first));
  EXPECT_EQ(sim.receivers[0]->deliveries().size(), 5u);
}

TEST(Dvmrp, GraftRestoresPrunedBranch) {
  BaselineNet<DvmrpRouter> sim(workload::make_kary_tree(2, 2));
  sim.receivers[0]->join_group(kGroup);
  sim.run_for(sim::seconds(1));
  sim.source->send_to_group(kGroup, 100, 1);
  sim.run_for(sim::seconds(1));

  // A new member joins a pruned branch; the graft reconnects it.
  sim.receivers[3]->join_group(kGroup);
  sim.run_for(sim::seconds(1));
  sim.source->send_to_group(kGroup, 100, 2);
  sim.run_for(sim::seconds(1));
  EXPECT_EQ(sim.receivers[3]->deliveries().size(), 1u);
}

TEST(Dvmrp, PruneExpiryRefloods) {
  // Broadcast-and-prune's standing cost: prunes are soft state, so the
  // flood resumes every prune lifetime even with zero membership change.
  baseline::DvmrpConfig config;
  config.prune_lifetime = sim::seconds(5);
  BaselineNet<DvmrpRouter, baseline::DvmrpConfig> sim(
      workload::make_kary_tree(2, 2), config);
  sim.receivers[0]->join_group(kGroup);
  sim.run_for(sim::seconds(1));

  auto prunes_total = [&sim]() {
    std::uint64_t n = 0;
    for (auto* r : sim.routers) n += r->stats().prunes_sent;
    return n;
  };

  // Settle: prune cascades take a couple of packets to quiesce (a
  // parent only notices an all-pruned child set on the next packet).
  for (int p = 1; p <= 3; ++p) {
    sim.source->send_to_group(kGroup, 100, static_cast<std::uint64_t>(p));
    sim.run_for(sim::milliseconds(300));
  }
  const auto settled = prunes_total();
  EXPECT_GT(settled, 0u);

  // Within the prune lifetime: no re-flood, no new prunes.
  sim.source->send_to_group(kGroup, 100, 4);
  sim.run_for(sim::milliseconds(300));
  EXPECT_EQ(prunes_total(), settled);

  // After expiry the next packet floods again and re-triggers prunes.
  sim.run_for(sim::seconds(7));
  sim.source->send_to_group(kGroup, 100, 5);
  sim.run_for(sim::milliseconds(300));
  EXPECT_GT(prunes_total(), settled);
  EXPECT_EQ(sim.receivers[0]->deliveries().size(), 5u);
}

TEST(Dvmrp, AnySourceCanSend) {
  // The group model's property (and problem): receiver(1)'s host can
  // blast the group and members receive it.
  BaselineNet<DvmrpRouter> sim(workload::make_kary_tree(2, 2));
  sim.receivers[0]->join_group(kGroup);
  sim.run_for(sim::seconds(1));
  sim.receivers[1]->send_to_group(kGroup, 4000, 666);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.receivers[0]->deliveries().size(), 1u);
  EXPECT_EQ(sim.receivers[0]->deliveries()[0].source,
            sim.receivers[1]->address());
}

// ---------------------------------------------------------------- PIM-SM

struct PimNet : BaselineNet<PimSmRouter, PimConfig> {
  explicit PimNet(workload::GeneratedTopology generated, PimConfig config)
      : BaselineNet<PimSmRouter, PimConfig>(std::move(generated), config) {}
};

TEST(PimSm, SharedTreeDeliversViaRp) {
  auto topo = workload::make_kary_tree(2, 2);
  // RP = the right depth-1 router (routers[2]).
  PimConfig config;
  config.rp = topo.topology.node(topo.routers[2]).address;
  PimNet sim(std::move(topo), config);

  sim.receivers[0]->join_group(kGroup, ip::Protocol::kPim);
  sim.run_for(sim::seconds(1));
  sim.source->send_to_group(kGroup, 100, 1);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.receivers[0]->deliveries().size(), 1u);
  // The register triangle ran: first hop encapsulated to the RP.
  std::uint64_t registers = 0, decaps = 0;
  for (auto* r : sim.routers) {
    registers += r->stats().registers_sent;
    decaps += r->stats().registers_decapsulated;
  }
  EXPECT_GE(registers, 1u);
  EXPECT_GE(decaps, 1u);
}

TEST(PimSm, RegisterStopSwitchesToNativeForwarding) {
  auto topo = workload::make_kary_tree(2, 2);
  PimConfig config;
  config.rp = topo.topology.node(topo.routers[2]).address;
  PimNet sim(std::move(topo), config);

  sim.receivers[0]->join_group(kGroup, ip::Protocol::kPim);
  sim.run_for(sim::seconds(1));
  for (int i = 1; i <= 5; ++i) {
    sim.source->send_to_group(kGroup, 100, static_cast<std::uint64_t>(i));
    sim.run_for(sim::seconds(1));
  }
  EXPECT_EQ(sim.receivers[0]->deliveries().size(), 5u);
  std::uint64_t registers = 0, stops = 0;
  for (auto* r : sim.routers) {
    registers += r->stats().registers_sent;
    stops += r->stats().register_stops;
  }
  // After the RegisterStop, later packets flow natively: far fewer than
  // one register per packet.
  EXPECT_GE(stops, 1u);
  EXPECT_LT(registers, 5u);
}

TEST(PimSm, SptSwitchoverBuildsSourceTree) {
  auto topo = workload::make_kary_tree(2, 2);
  PimConfig config;
  config.rp = topo.topology.node(topo.routers[2]).address;
  config.spt_switchover = true;
  PimNet sim(std::move(topo), config);

  sim.receivers[0]->join_group(kGroup, ip::Protocol::kPim);
  sim.run_for(sim::seconds(1));
  for (int i = 1; i <= 6; ++i) {
    sim.source->send_to_group(kGroup, 100, static_cast<std::uint64_t>(i));
    sim.run_for(sim::seconds(1));
  }
  // The last-hop router switched: it holds (S,G) state now.
  const ip::ChannelId sg{sim.source->address(), kGroup};
  bool any_sg = false;
  for (auto* r : sim.routers) any_sg |= r->on_source_tree(sg);
  EXPECT_TRUE(any_sg);
  // Delivery continued throughout (shared tree, then SPT).
  EXPECT_GE(sim.receivers[0]->deliveries().size(), 5u);
}

TEST(PimSm, LeavePrunesSharedTree) {
  auto topo = workload::make_kary_tree(2, 2);
  PimConfig config;
  config.rp = topo.topology.node(topo.routers[0]).address;  // RP at root
  PimNet sim(std::move(topo), config);

  sim.receivers[0]->join_group(kGroup, ip::Protocol::kPim);
  sim.run_for(sim::seconds(1));
  std::size_t on_tree_before = 0;
  for (auto* r : sim.routers) {
    if (r->on_shared_tree(kGroup)) ++on_tree_before;
  }
  EXPECT_GE(on_tree_before, 3u);

  sim.receivers[0]->leave_group(kGroup, ip::Protocol::kPim);
  sim.run_for(sim::seconds(1));
  for (auto* r : sim.routers) {
    if (r->is_rp()) continue;
    EXPECT_FALSE(r->on_shared_tree(kGroup));
  }
}

// ------------------------------------------------------------------ CBT

struct CbtNet : BaselineNet<CbtRouter, CbtConfig> {
  explicit CbtNet(workload::GeneratedTopology generated, CbtConfig config)
      : BaselineNet<CbtRouter, CbtConfig>(std::move(generated), config) {}
};

TEST(Cbt, BidirectionalTreeDeliversBothWays) {
  auto topo = workload::make_kary_tree(2, 2);
  CbtConfig config;
  config.core = topo.topology.node(topo.routers[0]).address;  // core at root
  CbtNet sim(std::move(topo), config);

  // Two members on opposite branches; both also send.
  sim.receivers[0]->join_group(kGroup, ip::Protocol::kCbt);
  sim.receivers[3]->join_group(kGroup, ip::Protocol::kCbt);
  sim.run_for(sim::seconds(1));

  sim.receivers[0]->send_to_group(kGroup, 100, 1);
  sim.run_for(sim::seconds(1));
  // Member-sender: data goes up its branch and down the other; the
  // sender itself does not hear its own packet back.
  ASSERT_EQ(sim.receivers[3]->deliveries().size(), 1u);
  EXPECT_TRUE(sim.receivers[0]->deliveries().empty());

  sim.receivers[3]->send_to_group(kGroup, 100, 2);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.receivers[0]->deliveries().size(), 1u);
}

TEST(Cbt, OffTreeSenderTunnelsToCore) {
  auto topo = workload::make_kary_tree(2, 2);
  CbtConfig config;
  // Core away from the source's first hop, so the non-member source's
  // first-hop router must tunnel.
  config.core = topo.topology.node(topo.routers[2]).address;
  CbtNet sim(std::move(topo), config);

  sim.receivers[0]->join_group(kGroup, ip::Protocol::kCbt);
  sim.run_for(sim::seconds(1));
  // The source host never joined: its first hop encapsulates to the core.
  sim.source->send_to_group(kGroup, 100, 7);
  sim.run_for(sim::seconds(1));
  ASSERT_EQ(sim.receivers[0]->deliveries().size(), 1u);
  std::uint64_t encaps = 0, decaps = 0;
  for (auto* r : sim.routers) {
    encaps += r->stats().encapsulated_to_core;
    decaps += r->stats().decapsulated_at_core;
  }
  EXPECT_EQ(encaps, 1u);
  EXPECT_EQ(decaps, 1u);
}

TEST(Cbt, OneStateEntryPerGroupRegardlessOfSenders) {
  auto topo = workload::make_kary_tree(2, 2);
  CbtConfig config;
  config.core = topo.topology.node(topo.routers[0]).address;
  CbtNet sim(std::move(topo), config);

  sim.receivers[0]->join_group(kGroup, ip::Protocol::kCbt);
  sim.receivers[1]->join_group(kGroup, ip::Protocol::kCbt);
  sim.run_for(sim::seconds(1));
  for (std::size_t s = 0; s < 4; ++s) {
    sim.receivers[s]->send_to_group(kGroup, 50, s);
  }
  sim.run_for(sim::seconds(1));
  for (auto* r : sim.routers) {
    EXPECT_LE(r->state_entries(), 1u);  // (*,G) only, never (S,G)
  }
}

TEST(Cbt, LeaveCascadesPrunes) {
  auto topo = workload::make_kary_tree(2, 2);
  CbtConfig config;
  config.core = topo.topology.node(topo.routers[0]).address;
  CbtNet sim(std::move(topo), config);

  sim.receivers[0]->join_group(kGroup, ip::Protocol::kCbt);
  sim.run_for(sim::seconds(1));
  sim.receivers[0]->leave_group(kGroup, ip::Protocol::kCbt);
  sim.run_for(sim::seconds(1));
  for (auto* r : sim.routers) {
    EXPECT_FALSE(r->on_tree(kGroup));
  }
}

}  // namespace
}  // namespace express::test
