// Workload generators: topology shapes, churn schedules, the Fig. 8
// scenario, and Zipf popularity.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/routing.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"
#include "workload/zipf.hpp"

namespace express::workload {
namespace {

TEST(TopoGen, StarShape) {
  auto g = make_star(5, 2);
  EXPECT_EQ(g.receiver_hosts.size(), 5u);
  EXPECT_EQ(g.routers.size(), 1u + 5 * 2);  // root + 2 per arm
  EXPECT_NE(g.source_host, net::kInvalidNode);
  // Every receiver is source_router-rooted at distance hops+... source
  // to receiver: src-root (1) + 2 routers + host link = 4 hops.
  net::UnicastRouting routing(g.topology);
  for (net::NodeId r : g.receiver_hosts) {
    EXPECT_EQ(routing.hop_count(g.source_host, r), 4u);
  }
}

TEST(TopoGen, KaryTreeShape) {
  auto g = make_kary_tree(2, 3);
  EXPECT_EQ(g.routers.size(), 15u);          // 1 + 2 + 4 + 8
  EXPECT_EQ(g.receiver_hosts.size(), 8u);    // one per leaf
  net::UnicastRouting routing(g.topology);
  for (net::NodeId r : g.receiver_hosts) {
    // src - root - d1 - d2 - leaf - host = 5 hops.
    EXPECT_EQ(routing.hop_count(g.source_host, r), 5u);
  }
}

TEST(TopoGen, LineMatchesPaperDiameter) {
  auto g = make_line(25);
  EXPECT_EQ(g.routers.size(), 25u);
  net::UnicastRouting routing(g.topology);
  // Source to the single receiver crosses all 25 routers + host links.
  EXPECT_EQ(routing.hop_count(g.source_host, g.receiver_hosts[0]), 26u);
}

TEST(TopoGen, TransitStubIsConnected) {
  sim::Rng rng(17);
  auto g = make_transit_stub(6, 3, 4, rng);
  EXPECT_EQ(g.receiver_hosts.size(), 6u * 3 * 4);
  net::UnicastRouting routing(g.topology);
  for (net::NodeId r : g.receiver_hosts) {
    EXPECT_TRUE(routing.cost(g.source_host, r).has_value())
        << "unreachable receiver " << r;
  }
}

TEST(TopoGen, TransitStubIsDeterministicPerSeed) {
  sim::Rng rng_a(5), rng_b(5);
  auto a = make_transit_stub(4, 2, 2, rng_a);
  auto b = make_transit_stub(4, 2, 2, rng_b);
  EXPECT_EQ(a.topology.node_count(), b.topology.node_count());
  EXPECT_EQ(a.topology.link_count(), b.topology.link_count());
}

TEST(Churn, PoissonEventsAreSortedAndPaired) {
  sim::Rng rng(7);
  auto events = poisson_churn(50, sim::seconds(600), sim::seconds(120),
                              sim::seconds(60), rng);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const ChurnEvent& a, const ChurnEvent& b) {
                               return a.at < b.at;
                             }));
  // Per-host join/leave alternation starting with a join.
  std::vector<int> state(50, 0);
  for (const auto& e : events) {
    if (e.join) {
      EXPECT_EQ(state[e.host_index], 0) << "double join";
      state[e.host_index] = 1;
    } else {
      EXPECT_EQ(state[e.host_index], 1) << "leave without join";
      state[e.host_index] = 0;
    }
  }
  // Everyone ends unsubscribed.
  for (int s : state) EXPECT_EQ(s, 0);
}

TEST(Churn, Fig8ScheduleMatchesPaperShape) {
  sim::Rng rng(11);
  Fig8Params params;
  auto events = fig8_schedule(params, rng);
  // 250 joins + 250 leaves.
  EXPECT_EQ(events.size(), 500u);

  std::int64_t current = 0, peak = 0;
  std::int64_t at_150 = -1, at_250 = -1, at_299 = -1;
  for (const auto& e : events) {
    current += e.join ? 1 : -1;
    peak = std::max(peak, current);
    if (e.at <= sim::seconds(150)) at_150 = current;
    if (e.at <= sim::seconds(250)) at_250 = current;
    if (e.at <= sim::seconds(299)) at_299 = current;
  }
  EXPECT_EQ(peak, 250);          // all subscribed at the peak
  EXPECT_EQ(current, 0);         // all unsubscribed at the end
  EXPECT_GT(at_150, 120);        // initial burst + some trickle
  EXPECT_LT(at_150, 250);        // trickle not finished at t=150
  EXPECT_EQ(at_250, 250);        // second burst done before t=250
  EXPECT_EQ(at_299, 250);        // quiet until t=300
  // No event in the quiet window (250, 300).
  for (const auto& e : events) {
    EXPECT_FALSE(e.at > sim::seconds(206) && e.at < sim::seconds(300))
        << "event inside the quiet period at " << sim::to_seconds(e.at);
  }
}

TEST(Zipf, ProbabilitiesDecreaseAndSumToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (std::uint32_t k = 0; k < 100; ++k) {
    sum += zipf.probability(k);
    if (k > 0) {
      EXPECT_LT(zipf.probability(k), zipf.probability(k - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(zipf.probability(200), 0.0);
}

TEST(Zipf, SamplingMatchesDistribution) {
  ZipfSampler zipf(10, 1.0);
  sim::Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::uint32_t k = 0; k < 10; ++k) {
    const double expected = zipf.probability(k) * n;
    EXPECT_NEAR(counts[k], expected, expected * 0.1 + 50) << "rank " << k;
  }
}

TEST(Zipf, HigherExponentIsMoreSkewed) {
  ZipfSampler flat(50, 0.5), steep(50, 2.0);
  EXPECT_GT(steep.probability(0), flat.probability(0));
  EXPECT_LT(steep.probability(49), flat.probability(49));
}

}  // namespace
}  // namespace express::workload
