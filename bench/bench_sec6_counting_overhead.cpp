// S6 (§6): counting overhead — polling vs proactive maintenance.
//
// Same churn workload, two ways for the source to know the audience:
// (a) periodic CountQuery polls at various rates; (b) proactive Counts
// per the error-tolerance curve. We report total ECMP messages and the
// error of the source's view of the count, showing the paper's claim
// that proactive counting gives accurate, timely counts at lower cost
// than fast polling on large, mostly-quiescent channels.
#include <cmath>
#include <map>

#include "common.hpp"
#include "costmodel/counting_cost.hpp"
#include "testbed/testbed.hpp"
#include "workload/churn.hpp"

namespace {

using namespace express;

struct Outcome {
  std::uint64_t control_messages = 0;  // Counts + CountQueries network-wide
  double mean_abs_error = 0;
};

std::vector<workload::ChurnEvent> make_schedule() {
  sim::Rng rng(7);
  workload::Fig8Params params;
  params.subscribers = 200;
  return workload::fig8_schedule(params, rng);
}

std::map<int, std::int64_t> actual_series(
    const std::vector<workload::ChurnEvent>& schedule) {
  std::map<int, std::int64_t> actual;
  std::int64_t current = 0;
  std::size_t next = 0;
  for (int t = 0; t <= 400; ++t) {
    while (next < schedule.size() && schedule[next].at <= sim::seconds(t)) {
      current += schedule[next].join ? 1 : -1;
      ++next;
    }
    actual[t] = current;
  }
  return actual;
}

std::uint64_t control_message_total(Testbed& bed) {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < bed.router_count(); ++i) {
    const auto& s = bed.router(i).stats();
    n += s.counts_sent + s.queries_sent + s.responses_sent;
  }
  n += bed.source().stats().counts_sent;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    n += bed.receiver(i).stats().counts_sent;
  }
  return n;
}

Outcome run(std::optional<double> poll_period,
            std::optional<double> proactive_alpha,
            const std::vector<workload::ChurnEvent>& schedule,
            const std::map<int, std::int64_t>& actual) {
  RouterConfig config;
  if (proactive_alpha) {
    config.proactive = counting::CurveParams{0.3, 120.0, *proactive_alpha};
  }
  Testbed bed(workload::make_kary_tree(4, 3), config);  // 64 leaves... 200 subs
  // 200 subscribers over 64 hosts: reuse hosts round-robin as extra
  // local apps, which ECMP counts exactly (per-host local counts).
  const ip::ChannelId ch = bed.source().allocate_channel();
  for (const auto& event : schedule) {
    const std::size_t host = event.host_index % bed.receiver_count();
    bed.net().scheduler().schedule_at(event.at, [&bed, &ch, event, host]() {
      if (event.join) {
        bed.receiver(host).new_subscription(ch);
      } else {
        bed.receiver(host).delete_subscription(ch);
      }
    });
  }

  // The source's current belief about the audience.
  auto belief = std::make_shared<std::int64_t>(0);
  if (poll_period) {
    const int period = static_cast<int>(*poll_period);
    for (int t = period; t <= 400; t += period) {
      bed.net().scheduler().schedule_at(sim::seconds(t), [&bed, &ch, belief]() {
        bed.source().count_query(ch, ecmp::kSubscriberId, sim::seconds(5),
                                 [belief](CountResult r) {
                                   *belief = r.count;
                                 });
      });
    }
  }

  Outcome out;
  double error_sum = 0;
  int samples = 0;
  ExpressRouter& root = bed.source_router();
  for (int t = 0; t <= 400; t += 2) {
    bed.net().scheduler().schedule_at(sim::seconds(t), [&, t]() {
      const std::int64_t view =
          poll_period ? *belief : root.subtree_count(ch);
      error_sum += std::abs(static_cast<double>(view - actual.at(t)));
      ++samples;
    });
  }
  bed.run_for(sim::seconds(401));
  out.control_messages = control_message_total(bed);
  out.mean_abs_error = error_sum / samples;
  return out;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("S6 / §6", "counting overhead: polling vs proactive");
  const auto schedule = make_schedule();
  const auto actual = actual_series(schedule);

  Table table({"strategy", "control msgs", "mean |error|", "notes"});
  for (double period : {60.0, 20.0, 5.0}) {
    const Outcome o = run(period, std::nullopt, schedule, actual);
    table.row({"poll every " + fmt(period, 0) + " s",
               fmt_int(o.control_messages), fmt(o.mean_abs_error, 1),
               "error is staleness between polls"});
  }
  for (double alpha : {2.5, 4.0}) {
    const Outcome o = run(std::nullopt, alpha, schedule, actual);
    table.row({"proactive alpha=" + fmt(alpha, 1), fmt_int(o.control_messages),
               fmt(o.mean_abs_error, 1), "error bounded by the curve"});
  }
  table.print();

  note("");
  note("analytic §6 example — charging for a 90-minute movie, polled every");
  note("5 minutes on a 200,000-link tree: " +
       fmt(express::costmodel::movie_poll_messages(200'000, 300, 5400) / 1e6,
           1) +
       "M messages; proactive counting sends only what churn requires.");
  return 0;
}
