// F5 (Fig. 5): the EXPRESS FIB entry format and lookup cost.
//
// Confirms the 12-byte packed layout (source 32b | dest 24b | iif |
// oifs 32b) and measures software exact-match lookup throughput across
// table sizes. The paper's fast path is 4 ns SRAM at ~100 M lookups/s;
// our software hash table is the simulator stand-in — the point is the
// format check and that lookup cost is flat in table size.
#include <chrono>

#include "common.hpp"
#include "express/fib.hpp"
#include "sim/random.hpp"

int main() {
  using namespace express;
  using namespace express::bench;

  banner("F5 / Fig. 5", "EXPRESS FIB entry format");
  Table format({"field", "bits", "offset (bytes)"});
  format.row({"source S", "32", "0"});
  format.row({"dest E (channel index)", "24", "4"});
  format.row({"incoming interface", "5 (byte-aligned)", "7"});
  format.row({"outgoing interfaces", "32", "8"});
  format.print();
  note("sizeof(PackedFibEntry) = " + fmt_int(sizeof(PackedFibEntry)) +
       " bytes (paper: 12)");

  note("");
  note("software exact-match (S,E) lookup throughput:");
  Table perf({"entries", "packed bytes", "lookups/s (millions)",
              "ns/lookup"});
  sim::Rng rng(42);
  for (std::size_t entries : {1000ul, 10'000ul, 100'000ul, 1'000'000ul}) {
    Fib fib;
    std::vector<ip::ChannelId> channels;
    channels.reserve(entries);
    for (std::size_t i = 0; i < entries; ++i) {
      ip::ChannelId ch{ip::Address{0x0A000000u + (rng.next_u32() & 0xFFFF)},
                       ip::Address::single_source(static_cast<std::uint32_t>(i))};
      FibEntry& e = fib.upsert(ch);
      e.iif = 0;
      e.oifs.set(1 + (rng.next_u32() % 30));
      channels.push_back(ch);
    }
    const std::size_t lookups = 4'000'000;
    std::uint64_t hits = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < lookups; ++i) {
      const auto& ch = channels[(i * 2654435761u) % channels.size()];
      if (fib.lookup(ch, 0) != nullptr) ++hits;
    }
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (hits != lookups) note("unexpected misses!");
    perf.row({fmt_int(entries), fmt_int(fib.packed_bytes()),
              fmt(lookups / elapsed / 1e6, 1),
              fmt(elapsed / lookups * 1e9, 1)});
  }
  perf.print();
  note("paper: 4 ns SRAM -> ~100 M lookups/s in hardware; each entry costs");
  note("12 B x $55/MB = ~0.066 cents of fast-path memory.");
  return 0;
}
