// S5 (§5): memory and bandwidth scale linearly with the number of
// channels.
//
// One source hosts C channels; every receiver subscribes to each (the
// multi-channel conference / many-station case). We sweep C and report
// FIB bytes, management bytes, and ECMP control bytes — all linear, the
// paper's argument that "the cost per channel is low and the overall
// cost ... is relatively modest and growing linearly".
#include "common.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace express;
  using namespace express::bench;

  banner("S5 / §5", "linear scaling in the number of channels");
  Table table({"channels", "FIB entries", "FIB bytes (packed)",
               "mgmt bytes", "control bytes", "per-channel control"});

  double first_ratio = 0;
  for (std::uint32_t channels : {8u, 32u, 128u, 512u}) {
    Testbed bed(workload::make_kary_tree(2, 3));  // 8 receivers, 15 routers
    std::vector<ip::ChannelId> chs;
    chs.reserve(channels);
    for (std::uint32_t c = 0; c < channels; ++c) {
      chs.push_back(bed.source().allocate_channel());
    }
    for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
      for (const auto& ch : chs) bed.receiver(i).new_subscription(ch);
    }
    bed.run_for(sim::seconds(5));

    std::size_t fib_bytes = 0;
    for (std::size_t i = 0; i < bed.router_count(); ++i) {
      fib_bytes += bed.router(i).fib().packed_bytes();
    }
    const std::uint64_t control = bed.total_control_bytes();
    if (first_ratio == 0) first_ratio = static_cast<double>(control) / channels;
    table.row({fmt_int(channels), fmt_int(bed.total_fib_entries()),
               fmt_int(fib_bytes), fmt_int(bed.total_management_bytes()),
               fmt_int(control), fmt(static_cast<double>(control) / channels, 0)});
  }
  table.print();
  note("per-channel control cost is flat across a 64x sweep: memory and");
  note("bandwidth grow linearly with channels, so the multiple channels a");
  note("multi-source application needs (§4.4) are not a problem in practice.");
  return 0;
}
