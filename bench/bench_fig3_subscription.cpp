// F3 (Fig. 3): subscription propagation.
//
// A join (non-zero subscriberId Count) travels hop-by-hop along the RPF
// path toward the source until it reaches a router already on the
// distribution tree. We subscribe hosts one at a time on a binary tree
// and report how far each join travelled and how long the subscription
// took to become live (join latency to first delivered packet).
#include "common.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace express;
  using namespace express::bench;

  banner("F3 / Fig. 3", "a host subscribing to an EXPRESS channel");
  Testbed bed(workload::make_kary_tree(2, 4));  // 16 receivers, depth 4
  const ip::ChannelId ch = bed.source().allocate_channel();

  auto total_counts = [&bed]() {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < bed.router_count(); ++i) {
      n += bed.router(i).stats().counts_received;
    }
    return n;
  };

  Table table({"join order", "receiver", "join hops travelled",
               "on-tree routers after", "delivery delay (ms)"});
  // Subscribe in an order that exercises splicing: receiver 0, its
  // sibling 1, a cousin 2, then the far side of the tree.
  const std::size_t order[] = {0, 1, 2, 8, 9, 15};
  std::size_t join_number = 0;
  for (std::size_t idx : order) {
    ++join_number;
    const std::uint64_t before = total_counts();
    bed.receiver(idx).new_subscription(ch);
    bed.run_for(sim::seconds(1));
    const std::uint64_t hops = total_counts() - before;

    std::size_t on_tree = 0;
    for (std::size_t i = 0; i < bed.router_count(); ++i) {
      if (bed.router(i).on_tree(ch)) ++on_tree;
    }

    // Join latency: time until a packet sent now reaches this receiver.
    const std::size_t delivered_before =
        bed.receiver(idx).deliveries().size();
    const sim::Time sent = bed.net().now();
    bed.source().send(ch, 100, idx);
    bed.run_for(sim::seconds(1));
    const bool delivered =
        bed.receiver(idx).deliveries().size() > delivered_before;
    const double latency_ms =
        delivered
            ? sim::to_seconds(bed.receiver(idx).deliveries().back().at - sent) *
                  1e3
            : -1;
    table.row({fmt_int(join_number), "recv" + std::to_string(idx),
               fmt_int(hops), fmt_int(on_tree), fmt(latency_ms, 1)});
  }
  table.print();
  note("the first join builds the whole branch; later joins splice at the");
  note("nearest on-tree router (fewer hops), exactly Fig. 3's picture.");
  return 0;
}
