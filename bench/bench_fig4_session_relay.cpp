// F4 (Fig. 4): the session relay approach.
//
// A secondary speaker relays through the SR onto the channel (SR, E).
// We measure end-to-end delay from the speaker to every participant and
// check the paper's §4.5 bound: relayed delay <= 2x the distance from
// the most distant subscriber to the SR (symmetric paths).
#include "common.hpp"
#include "testbed/testbed.hpp"
#include "relay/participant.hpp"
#include "relay/session_relay.hpp"

int main() {
  using namespace express;
  using namespace express::bench;

  banner("F4 / Fig. 4", "the session relay approach");
  Testbed bed(workload::make_kary_tree(2, 3));  // 8 receivers
  relay::SessionRelay sr(bed.source(), relay::RelayConfig{});

  std::vector<std::unique_ptr<relay::Participant>> participants;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    participants.push_back(std::make_unique<relay::Participant>(
        bed.receiver(i), sr.channel(), bed.source().address()));
    sr.authorize(bed.receiver(i).address());
    participants.back()->join();
  }
  bed.run_for(sim::seconds(1));
  sr.start();
  bed.run_for(sim::seconds(1));

  // Speaker = participant 0 ("A says hello" in Fig. 4).
  const sim::Time spoke_at = bed.net().now();
  participants[0]->speak(800);
  bed.run_for(sim::seconds(1));

  const auto& routing = bed.net().routing();
  const net::NodeId sr_node = bed.roles().source_host;

  // The bound's reference distance: max one-way delay SR -> subscriber.
  double max_sr_delay_ms = 0;
  for (net::NodeId h : bed.roles().receiver_hosts) {
    max_sr_delay_ms = std::max(
        max_sr_delay_ms,
        sim::to_seconds(routing.path_delay(sr_node, h).value()) * 1e3);
  }

  Table table({"participant", "delay via SR (ms)", "direct unicast (ms)",
               "stretch"});
  double worst_relayed = 0;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const auto& deliveries = participants[i]->deliveries();
    if (deliveries.empty()) {
      table.row({"recv" + std::to_string(i), "-", "-", "-"});
      continue;
    }
    const double relayed_ms =
        sim::to_seconds(deliveries.back().at - spoke_at) * 1e3;
    worst_relayed = std::max(worst_relayed, relayed_ms);
    const double direct_ms =
        sim::to_seconds(routing
                            .path_delay(bed.roles().receiver_hosts[0],
                                        bed.roles().receiver_hosts[i])
                            .value()) *
        1e3;
    table.row({"recv" + std::to_string(i), fmt(relayed_ms, 2),
               fmt(direct_ms, 2),
               direct_ms > 0 ? fmt(relayed_ms / direct_ms, 2) : "-"});
  }
  table.print();
  note("max SR->subscriber one-way delay: " + fmt(max_sr_delay_ms, 2) + " ms");
  note("worst relayed delay: " + fmt(worst_relayed, 2) +
       " ms; paper bound (2x max distance): " + fmt(2 * max_sr_delay_ms, 2) +
       " ms -> " +
       (worst_relayed <= 2 * max_sr_delay_ms + 0.5 ? "HOLDS" : "VIOLATED"));
  note("relayed frames: " + fmt_int(sr.stats().frames_relayed) +
       ", unauthorized drops: " + fmt_int(sr.stats().dropped_unauthorized));
  return 0;
}
