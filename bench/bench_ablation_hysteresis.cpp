// Ablation: route-change hysteresis (§3.2).
//
// "Hysteresis is applied to prevent route oscillation." We flap a link
// on the primary path and count the protocol churn (joins + prunes)
// with hysteresis disabled vs enabled, plus the delivery behaviour of a
// stream crossing the flap.
#include "common.hpp"
#include "express/host.hpp"
#include "express/router.hpp"
#include "net/network.hpp"

namespace {

using namespace express;

struct FlapRun {
  std::uint64_t joins = 0;
  std::uint64_t prunes = 0;
  std::size_t delivered = 0;
};

FlapRun run(sim::Duration hysteresis, int flaps, sim::Duration flap_period) {
  net::Topology topo;
  const auto ra = topo.add_router();
  const auto rb = topo.add_router();
  const auto rc = topo.add_router();
  const auto rd = topo.add_router();
  const auto src = topo.add_host();
  const auto dst = topo.add_host();
  topo.add_link(ra, src, sim::milliseconds(1));
  topo.add_link(ra, rb, sim::milliseconds(1), 1);
  const auto flappy = topo.add_link(rb, rd, sim::milliseconds(1), 1);
  topo.add_link(ra, rc, sim::milliseconds(1), 2);
  topo.add_link(rc, rd, sim::milliseconds(1), 2);
  topo.add_link(rd, dst, sim::milliseconds(1));

  net::Network network(std::move(topo));
  RouterConfig config;
  config.route_change_hysteresis = hysteresis;
  std::vector<ExpressRouter*> routers;
  for (auto id : {ra, rb, rc, rd}) {
    routers.push_back(&network.attach<ExpressRouter>(id, config));
  }
  auto& source = network.attach<ExpressHost>(src);
  auto& sink = network.attach<ExpressHost>(dst);
  const ip::ChannelId ch = source.allocate_channel();
  sink.new_subscription(ch);
  network.run_until(sim::seconds(1));

  // Stream packets continuously while the link flaps.
  for (int i = 0; i < 200; ++i) {
    network.scheduler().schedule_at(
        sim::seconds(1) + sim::milliseconds(50 * i),
        [&source, &ch, i]() { source.send(ch, 200, static_cast<std::uint64_t>(i)); });
  }
  for (int f = 0; f < flaps; ++f) {
    const sim::Time at = sim::seconds(2) + flap_period * (2 * f);
    network.scheduler().schedule_at(
        at, [&network, flappy]() { network.set_link_up(flappy, false); });
    network.scheduler().schedule_at(at + flap_period, [&network, flappy]() {
      network.set_link_up(flappy, true);
    });
  }
  network.run_until(sim::seconds(20));

  FlapRun out;
  for (auto* r : routers) {
    out.joins += r->stats().joins_sent;
    out.prunes += r->stats().prunes_sent;
  }
  out.delivered = sink.deliveries().size();
  return out;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("ABL-hysteresis / §3.2", "route-flap damping");
  note("primary link flaps down/up every 200 ms, 10 times; a 20-pkt/s");
  note("stream crosses the flap; 200 packets total.");
  Table table({"hysteresis", "joins", "prunes", "delivered / 200"});
  for (auto h : {sim::milliseconds(0), sim::milliseconds(50),
                 sim::milliseconds(500), sim::seconds(2)}) {
    const FlapRun r = run(h, 10, sim::milliseconds(200));
    table.row({fmt(sim::to_seconds(h), 2) + " s", fmt_int(r.joins),
               fmt_int(r.prunes), fmt_int(r.delivered)});
  }
  table.print();
  note("the §3.2 tradeoff: without damping every flap re-plumbs the tree");
  note("(2x the join/prune churn) but the stream rides the backup path");
  note("during outages; with hysteresis past the flap period the control");
  note("plane stays quiet and only the packets inside the brief outages");
  note("are lost. The application-visible choice is churn vs availability.");
  return 0;
}
