// F6 (Fig. 6 + §5.1): the FIB memory cost model and worked examples,
// cross-checked against FIB state measured in simulation.
#include "common.hpp"
#include "costmodel/fib_cost.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace express;
  using namespace express::bench;
  using namespace express::costmodel;

  banner("F6 / Fig. 6", "FIB memory cost model");
  const FibCostParams p;
  note("m*e (per-entry price) = " +
       fmt_dollars(p.memory_cost_per_byte * p.bytes_per_entry, 5) +
       "  (paper: $0.00066 = 0.066 cents)");
  note("router lifetime 1 year, FIB utilization 1%");

  Table examples({"example", "entries (bound)", "duration", "model cost",
                  "paper figure"});
  examples.row({"10-way conference, 10 channels, h=25",
                fmt_int(static_cast<std::uint64_t>(session_entries(10, 10, 25))),
                "20 min", fmt_dollars(ten_way_conference_cost()),
                "<= $0.075 (see EXPERIMENTS.md)"});
  const auto ticker = stock_ticker_cost();
  examples.row({"stock ticker, 100k subscribers",
                fmt_int(static_cast<std::uint64_t>(ticker.entries)), "1 year",
                fmt_dollars(ticker.yearly_cost, 0) + "/yr",
                "~$13,200/yr"});
  examples.row({"  per subscriber", "-", "1 year",
                fmt_dollars(ticker.cost_per_subscriber, 3) + "/yr",
                "cable: $1.00/viewer/MONTH"});
  examples.print();

  // Cross-check the n*h bound against measured tree state: subscribe n
  // receivers each h router-hops away and count actual FIB entries.
  note("");
  note("star-topology worst case, measured vs the n*h bound:");
  Table measured({"receivers n", "hops h", "bound n*h", "measured entries"});
  for (std::uint32_t n : {4u, 8u, 16u}) {
    for (std::uint32_t h : {2u, 4u}) {
      Testbed bed(workload::make_star(n, h));
      const ip::ChannelId ch = bed.source().allocate_channel();
      for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
        bed.receiver(i).new_subscription(ch);
      }
      bed.run_for(sim::seconds(2));
      measured.row({fmt_int(n), fmt_int(h), fmt_int(n * h),
                    fmt_int(bed.total_fib_entries())});
    }
  }
  measured.print();
  note("measured = n*h + 1 root entry; sharing in real trees only lowers it.");
  return 0;
}
