// Ablation: ECMP TCP mode vs UDP mode (§3.2).
//
// TCP mode needs one message to subscribe and one to leave, plus a
// per-neighbor keepalive — per-channel cost is O(1) over a channel's
// life. UDP mode refreshes every channel every query interval — cost
// grows with channels x time. The paper's placement rule ("TCP for core
// routers with few neighbors and many channels, UDP for edge routers")
// falls straight out of the measurement.
#include "common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace express;

struct ModeRun {
  std::uint64_t control_bytes = 0;
  std::uint64_t control_packets = 0;
  bool survived = true;
};

ModeRun run(std::uint32_t channels, bool udp_edge, sim::Duration horizon) {
  RouterConfig config;
  config.udp_query_interval = sim::seconds(30);
  Testbed bed(workload::make_star(4, 1), config);
  if (udp_edge) {
    // Edge routers' host-facing interface (index 1 on star arms).
    for (std::size_t r = 1; r < bed.router_count(); ++r) {
      bed.router(r).set_interface_mode(1, ecmp::Mode::kUdp);
    }
  }
  std::vector<ip::ChannelId> chs;
  for (std::uint32_t c = 0; c < channels; ++c) {
    chs.push_back(bed.source().allocate_channel());
  }
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    for (const auto& ch : chs) bed.receiver(i).new_subscription(ch);
  }
  const std::uint64_t packets0 = bed.net().stats().packets_sent;
  bed.run_for(horizon);

  ModeRun out;
  out.control_bytes = bed.total_control_bytes();
  out.control_packets = bed.net().stats().packets_sent - packets0;
  for (std::size_t i = 0; i < bed.router_count() && out.survived; ++i) {
    out.survived = bed.router(i).channel_count() > 0 ||
                   !bed.router(i).fib().entries().empty() ||
                   i == 0;  // root may legitimately aggregate
  }
  return out;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("ABL-modes / §3.2", "TCP vs UDP transport for ECMP state");
  const sim::Duration horizon = sim::seconds(600);  // 10-minute channels
  Table table({"channels", "mode", "control packets", "control bytes",
               "bytes/channel"});
  for (std::uint32_t channels : {4u, 16u, 64u}) {
    for (bool udp : {false, true}) {
      const ModeRun r = run(channels, udp, horizon);
      table.row({fmt_int(channels), udp ? "UDP edge" : "TCP",
                 fmt_int(r.control_packets), fmt_int(r.control_bytes),
                 fmt(static_cast<double>(r.control_bytes) / channels, 0)});
    }
  }
  table.print();
  note("TCP-mode per-channel cost is flat over the channel lifetime (one");
  note("join, no refreshes); UDP-mode cost grows with channels x refresh");
  note("rate — hence the paper's core-TCP / edge-UDP split.");
  return 0;
}
