// S52 (§5.2): management-level (non-fast-path) state per channel.
//
// The paper budgets ~200 bytes of DRAM per channel (32 B per count
// record, 3 records at fanout 2, 2 outstanding counts, 8 B key) and
// concludes the lifetime cost is under 1/50th of a cent. We print the
// model and cross-check the simulated routers' actual management state.
#include "common.hpp"
#include "costmodel/mgmt_cost.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace express;
  using namespace express::bench;
  using namespace express::costmodel;

  banner("S52 / §5.2", "management-level router state");
  const MgmtCostParams p;
  Table model({"component", "value"});
  model.row({"count record (16 B logical, doubled)", fmt(p.record_bytes, 0) + " B"});
  model.row({"records per channel (fanout 2 + upstream)",
             fmt(p.average_fanout + 1, 0)});
  model.row({"outstanding counts", fmt(p.outstanding_counts, 0)});
  model.row({"cached key K(S,E)", fmt(p.key_bytes, 0) + " B"});
  model.row({"bytes per channel", fmt(bytes_per_channel(p), 0) + " B (paper: 200)"});
  model.row({"lifetime cost per channel @ $1/MB",
             fmt_dollars(channel_lifetime_cost(p), 7) +
                 " (paper: < $0.0002)"});
  model.print();

  note("");
  note("measured management state per router, binary tree, all leaves");
  note("subscribed, N channels from one source:");
  Table measured({"channels", "root mgmt bytes", "bytes/channel at root",
                  "network-wide mgmt bytes"});
  for (int channels : {1, 8, 64}) {
    Testbed bed(workload::make_kary_tree(2, 3));
    std::vector<ip::ChannelId> chs;
    for (int c = 0; c < channels; ++c) {
      chs.push_back(bed.source().allocate_channel());
    }
    for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
      for (const auto& ch : chs) bed.receiver(i).new_subscription(ch);
    }
    bed.run_for(sim::seconds(2));
    const std::size_t root = bed.source_router().management_state_bytes();
    measured.row({fmt_int(static_cast<std::uint64_t>(channels)), fmt_int(root),
                  fmt(static_cast<double>(root) / channels, 0),
                  fmt_int(bed.total_management_bytes())});
  }
  measured.print();
  note("per-channel state is flat: management memory scales linearly in");
  note("channels (the §5 claim), and is ordinary DRAM, not FIB SRAM.");
  return 0;
}
