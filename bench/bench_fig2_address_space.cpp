// F2 (Fig. 2): the single-source address carve-out.
//
// 232/8 gives every host interface 2^24 channels it can allocate with
// no global coordination, versus 2^28 class D addresses shared by the
// whole Internet under the group model. Demonstrates collision-free
// local allocation: two hosts picking the same channel index still name
// distinct channels.
#include "common.hpp"
#include "testbed/testbed.hpp"
#include "ip/address.hpp"

int main() {
  using namespace express;
  using namespace express::bench;

  banner("F2 / Fig. 2", "single-source multicast addresses");

  Table space({"address space", "addresses", "allocation authority"});
  space.row({"class D total (224/4)", fmt_int(ip::kClassDAddresses),
             "global (IANA / MASC-style)"});
  space.row({"single-source block (232/8)", fmt_int(1ull << 24),
             "per source host, local"});
  space.row({"channels per host (S fixed)", fmt_int(ip::kChannelsPerHost),
             "the host's own OS database"});
  space.print();

  // Distinct hosts may allocate the same low 24 bits: the (S, E) pair
  // disambiguates, so there is no global allocation service at all.
  Testbed bed(workload::make_star(2, 1));
  const ip::ChannelId a = bed.source().allocate_channel();
  auto& other = bed.receiver(0);
  const ip::ChannelId b{other.address(), a.dest};  // same E on another host
  note("");
  note("host A allocates " + a.to_string());
  note("host B may reuse E: " + b.to_string());
  note(std::string("channels are distinct: ") + (a != b ? "yes" : "NO"));
  note("sources per Internet under the group model: all hosts share " +
       fmt_int(ip::kClassDAddresses) + " addresses");

  // Exhaustion horizon: allocating one channel per second.
  const double years = static_cast<double>(ip::kChannelsPerHost) /
                       (365.25 * 24 * 3600);
  note("a host allocating 1 channel/second exhausts its space after " +
       fmt(years, 2) + " years");
  return 0;
}
