// SOAK — deterministic chaos campaign over an EXPRESS transit-stub
// network, gated by the invariant auditor (src/audit).
//
// A seeded fault schedule (link flaps, router deaths, partitions) is
// driven through a live network under Poisson subscription churn; after
// every heal the auditor samples at event boundaries until quiescence
// and records the fault's convergence time (heal -> first stable
// audit-clean instant). The gate (scripts/soak.sh) requires every fault
// to converge with zero outstanding violations.
//
//   ./build/bench/soak_chaos --out BENCH_soak.json          # 200 faults
//   ./build/bench/soak_chaos --quick --out /dev/null        # CI smoke
//   ./build/bench/soak_chaos --faults 500 --seed 42         # custom
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "audit/invariants.hpp"
#include "obs/obs.hpp"
#include "common.hpp"
#include "testbed/testbed.hpp"
#include "workload/chaos.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace {

using namespace express;

struct Options {
  std::size_t faults = 200;
  std::uint64_t seed = 1;
  bool quick = false;
  std::string out = "BENCH_soak.json";
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
      opt.faults = 20;
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      opt.faults = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: soak_chaos [--quick] [--faults N] [--seed S] "
                   "[--out FILE]\n");
      std::exit(2);
    }
  }
  return opt;
}

void write_json(const std::string& path, const Options& opt,
                const workload::ChaosReport& report,
                const obs::Registry& registry, double wall_s) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "soak_chaos: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"soak_chaos\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"quick\": %s,\n", opt.quick ? "true" : "false");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(opt.seed));
  std::fprintf(f, "  \"faults\": %llu,\n",
               static_cast<unsigned long long>(report.faults_injected));
  std::fprintf(f, "  \"violations\": %llu,\n",
               static_cast<unsigned long long>(report.violations));
  std::fprintf(f, "  \"unconverged\": %llu,\n",
               static_cast<unsigned long long>(report.unconverged));
  std::fprintf(f, "  \"audits_run\": %llu,\n",
               static_cast<unsigned long long>(report.audits_run));
  std::fprintf(f, "  \"max_convergence_s\": %.6f,\n",
               sim::to_seconds(report.max_convergence()));
  std::fprintf(f, "  \"mean_convergence_s\": %.6f,\n",
               report.mean_convergence_seconds());
  // Drop block straight from the metrics registry (same slots the
  // NetworkStats view reads; keys unchanged).
  std::fprintf(f, "  \"drops\": {\n");
  std::fprintf(f, "    \"link_down\": %llu,\n",
               static_cast<unsigned long long>(
                   registry.sum("net.drop.link_down")));
  std::fprintf(f, "    \"no_route\": %llu,\n",
               static_cast<unsigned long long>(
                   registry.sum("net.drop.no_route")));
  std::fprintf(f, "    \"ttl\": %llu\n",
               static_cast<unsigned long long>(registry.sum("net.drop.ttl")));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"wall_s\": %.3f,\n", wall_s);
  std::fprintf(f, "  \"per_fault\": [\n");
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& o = report.outcomes[i];
    std::fprintf(f,
                 "    {\"index\": %llu, \"kind\": \"%s\", "
                 "\"converged\": %s, \"convergence_s\": %.6f, "
                 "\"violations\": %llu}%s\n",
                 static_cast<unsigned long long>(o.index),
                 workload::fault_kind_name(o.kind),
                 o.converged ? "true" : "false",
                 o.converged ? sim::to_seconds(o.convergence) : -1.0,
                 static_cast<unsigned long long>(o.violations),
                 i + 1 < report.outcomes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  // Topology, fault schedule, and churn all hang off one seed: the same
  // invocation is bit-identical run to run (the determinism the repro
  // gates depend on).
  sim::Rng topo_rng(opt.seed);
  Testbed bed(workload::make_transit_stub(4, 3, 2, topo_rng));
  const ip::ChannelId ch = bed.source().allocate_channel();
  // Standing members in every third stub keep the tree spanning the
  // core for the whole campaign, so faults hit live forwarding state.
  for (std::size_t i = 0; i < bed.receiver_count(); i += 3) {
    bed.receiver(i).new_subscription(ch);
  }
  bed.run_for(sim::seconds(2));

  workload::FaultPlanConfig plan;
  plan.fault_count = opt.faults;
  sim::Rng fault_rng(opt.seed ^ 0x9e3779b97f4a7c15ULL);
  const auto schedule =
      workload::make_fault_schedule(bed.net().topology(), plan, fault_rng);

  // Churn horizon deliberately outlasts the churn window + hold: joins
  // and leaves keep arriving while links are down and while the heal
  // settles, so every fault hits a network mid-churn (the auditor then
  // measures convergence of a *moving* tree, not a frozen one).
  sim::Rng churn_rng(opt.seed + 1);
  auto churn = [&](std::size_t) {
    const auto events = workload::poisson_churn(
        static_cast<std::uint32_t>(bed.receiver_count() - 1),
        sim::seconds(4), sim::seconds(2), sim::seconds(2), churn_rng);
    for (const auto& ev : events) {
      bed.net().scheduler().schedule_at(
          bed.net().now() + (ev.at - sim::Time{}), [&bed, ev, ch] {
            auto& host = bed.receiver(ev.host_index + 1);
            if (ev.join) {
              host.new_subscription(ch);
            } else {
              host.delete_subscription(ch);
            }
          });
    }
  };
  auto audit = [&] {
    return audit::InvariantAuditor(bed.net()).run().violations.size();
  };

  bench::banner("SOAK", "chaos campaign under invariant audit");
  const auto t0 = std::chrono::steady_clock::now();
  const workload::ChaosReport report = workload::run_chaos_campaign(
      bed.net(), schedule, workload::ChaosConfig{}, audit, churn);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  bench::Table table({"metric", "value"});
  table.row({"faults", std::to_string(report.faults_injected)});
  table.row({"violations", std::to_string(report.violations)});
  table.row({"unconverged", std::to_string(report.unconverged)});
  table.row({"audits run", std::to_string(report.audits_run)});
  table.row({"max convergence (s)",
             bench::fmt(sim::to_seconds(report.max_convergence()), 3)});
  table.row({"mean convergence (s)",
             bench::fmt(report.mean_convergence_seconds(), 3)});
  table.row({"wall (s)", bench::fmt(wall_s, 2)});
  table.print();

  if (report.violations > 0) {
    // Outstanding violations survive to the end of the run; dump the
    // final audit so the failure is diagnosable from the soak log.
    const auto final_report = audit::InvariantAuditor(bed.net()).run();
    std::printf("\noutstanding violations at end of campaign:\n%s",
                final_report.to_string().c_str());
  }

  write_json(opt.out, opt, report, bed.net().obs().registry, wall_s);

  // Non-zero exit on any violation or unconverged fault makes the
  // binary its own gate even without scripts/soak.sh.
  return (report.violations == 0 && report.unconverged == 0) ? 0 : 1;
}
