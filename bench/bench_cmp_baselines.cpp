// CMP (§3.6 / §4.4): EXPRESS vs PIM-SM (shared and SPT), CBT, and
// DVMRP on the same topology and workload.
//
// Measured axes: per-router multicast state, delivery success, mean
// path stretch (delivery delay / direct unicast delay), total bytes the
// stream put on links, and control messages — the concrete versions of
// the paper's qualitative comparisons (RP/core detours, register
// triangles, broadcast-and-prune waste, EXPRESS's subscription-only
// trees).
#include <memory>

#include "baseline/cbt.hpp"
#include "baseline/dvmrp.hpp"
#include "baseline/group_host.hpp"
#include "baseline/pim_sm.hpp"
#include "common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace express;

constexpr int kPackets = 20;
constexpr std::uint32_t kPacketBytes = 1000;
// The source hangs off the leftmost leaf (receiver_hosts[0]'s router);
// the members are the four rightmost hosts; the RP/core sits on a left
// branch off the source's natural path, so rendezvous detours are
// visible instead of being short-circuited by oif inheritance at the
// root (which any tree topology otherwise does).
constexpr std::size_t kSourceHost = 0;
constexpr std::size_t kFirstMember = 12;
constexpr std::size_t kMembersEnd = 16;
constexpr std::size_t kRendezvousRouter = 4;  // depth-2, off the source path
const ip::Address kGroup(225, 9, 9, 9);

constexpr std::size_t member_count() { return kMembersEnd - kFirstMember; }

struct Result {
  std::string name;
  std::size_t state_entries = 0;
  std::size_t routers_with_state = 0;
  double delivery_ratio = 0;
  double first_packet_stretch = 0;  ///< includes RP/core detours
  double steady_stretch = 0;        ///< after native paths establish
  std::uint64_t data_link_bytes = 0;
};

workload::GeneratedTopology make_topology() {
  return workload::make_kary_tree(2, 4);  // 31 routers, 16 receivers
}

double stretch_of(sim::Duration delivery, sim::Duration direct) {
  return sim::to_seconds(delivery) / sim::to_seconds(direct);
}

Result run_express() {
  Testbed bed(make_topology());
  ExpressHost& src = bed.receiver(kSourceHost);
  const ip::ChannelId ch = src.allocate_channel();
  for (std::size_t i = kFirstMember; i < kMembersEnd; ++i) {
    bed.receiver(i).new_subscription(ch);
  }
  bed.run_for(sim::seconds(1));
  const std::uint64_t bytes_before = bed.net().total_link_bytes();
  std::vector<sim::Time> sent_at;
  for (int p = 0; p < kPackets; ++p) {
    sent_at.push_back(bed.net().now());
    src.send(ch, kPacketBytes, static_cast<std::uint64_t>(p));
    bed.run_for(sim::seconds(1));
  }

  Result r;
  r.name = "EXPRESS";
  for (std::size_t i = 0; i < bed.router_count(); ++i) {
    const std::size_t entries = bed.router(i).fib().size();
    r.state_entries += entries;
    if (entries > 0) ++r.routers_with_state;
  }
  r.data_link_bytes = bed.net().total_link_bytes() - bytes_before;
  std::uint64_t delivered = 0, first = 0, steady = 0;
  double first_sum = 0, steady_sum = 0;
  for (std::size_t i = kFirstMember; i < kMembersEnd; ++i) {
    const auto direct =
        bed.net()
            .routing()
            .path_delay(bed.roles().receiver_hosts[kSourceHost],
                        bed.roles().receiver_hosts[i])
            .value();
    for (const auto& d : bed.receiver(i).deliveries()) {
      ++delivered;
      const double s = stretch_of(d.at - sent_at.at(d.sequence), direct);
      if (d.sequence == 0) { first_sum += s; ++first; }
      else { steady_sum += s; ++steady; }
    }
  }
  r.delivery_ratio = static_cast<double>(delivered) /
                     (kPackets * static_cast<double>(member_count()));
  r.first_packet_stretch = first > 0 ? first_sum / first : 0;
  r.steady_stretch = steady > 0 ? steady_sum / steady : 0;
  return r;
}

template <typename Router, typename Config>
Result run_baseline(const std::string& name, ip::Protocol control,
                    Config config_of(const workload::GeneratedTopology&),
                    std::size_t state_of(const Router&)) {
  auto generated = make_topology();
  const Config config = config_of(generated);
  auto roles = generated;
  auto network = std::make_unique<net::Network>(std::move(generated.topology));
  std::vector<Router*> routers;
  for (net::NodeId id : roles.routers) {
    routers.push_back(&network->attach<Router>(id, config));
  }
  network->attach<baseline::GroupHost>(roles.source_host);
  std::vector<baseline::GroupHost*> receivers;
  for (net::NodeId id : roles.receiver_hosts) {
    receivers.push_back(&network->attach<baseline::GroupHost>(id));
  }
  baseline::GroupHost& source = *receivers[kSourceHost];

  for (std::size_t i = kFirstMember; i < kMembersEnd; ++i) {
    receivers[i]->join_group(kGroup, control);
  }
  network->run_until(sim::seconds(1));
  const std::uint64_t bytes_before = network->total_link_bytes();
  std::vector<sim::Time> sent_at;
  for (int p = 0; p < kPackets; ++p) {
    sent_at.push_back(network->now());
    source.send_to_group(kGroup, kPacketBytes, static_cast<std::uint64_t>(p));
    network->run_until(network->now() + sim::seconds(1));
  }

  Result r;
  r.name = name;
  for (const Router* router : routers) {
    const std::size_t entries = state_of(*router);
    r.state_entries += entries;
    if (entries > 0) ++r.routers_with_state;
  }
  r.data_link_bytes = network->total_link_bytes() - bytes_before;
  net::UnicastRouting routing_view(network->topology());
  std::uint64_t delivered = 0, first = 0, steady = 0;
  double first_sum = 0, steady_sum = 0;
  for (std::size_t i = kFirstMember; i < kMembersEnd; ++i) {
    const auto direct =
        routing_view
            .path_delay(roles.receiver_hosts[kSourceHost],
                        roles.receiver_hosts[i])
            .value();
    for (const auto& d : receivers[i]->deliveries()) {
      ++delivered;
      if (d.sequence >= sent_at.size()) continue;
      const double s = stretch_of(d.at - sent_at[d.sequence], direct);
      if (d.sequence == 0) { first_sum += s; ++first; }
      else { steady_sum += s; ++steady; }
    }
  }
  r.delivery_ratio = static_cast<double>(delivered) /
                     (kPackets * static_cast<double>(member_count()));
  r.first_packet_stretch = first > 0 ? first_sum / first : 0;
  r.steady_stretch = steady > 0 ? steady_sum / steady : 0;
  return r;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("CMP / §3.6, §4.4",
         "EXPRESS vs PIM-SM vs CBT vs DVMRP (31 routers, 16 hosts, 4 members)");

  std::vector<Result> results;
  results.push_back(run_express());

  results.push_back(run_baseline<baseline::PimSmRouter, baseline::PimConfig>(
      "PIM-SM shared", ip::Protocol::kPim,
      [](const workload::GeneratedTopology& g) {
        baseline::PimConfig c;
        // Network-chosen RP off the source's path — the paper's
        // complaint: applications have no control over RP placement.
        c.rp = g.topology.node(g.routers[kRendezvousRouter]).address;
        return c;
      },
      [](const baseline::PimSmRouter& r) { return r.state_entries(); }));

  results.push_back(run_baseline<baseline::PimSmRouter, baseline::PimConfig>(
      "PIM-SM +SPT", ip::Protocol::kPim,
      [](const workload::GeneratedTopology& g) {
        baseline::PimConfig c;
        c.rp = g.topology.node(g.routers[kRendezvousRouter]).address;
        c.spt_switchover = true;
        return c;
      },
      [](const baseline::PimSmRouter& r) { return r.state_entries(); }));

  results.push_back(run_baseline<baseline::CbtRouter, baseline::CbtConfig>(
      "CBT", ip::Protocol::kCbt,
      [](const workload::GeneratedTopology& g) {
        baseline::CbtConfig c;
        c.core = g.topology.node(g.routers[kRendezvousRouter]).address;
        return c;
      },
      [](const baseline::CbtRouter& r) { return r.state_entries(); }));

  results.push_back(run_baseline<baseline::DvmrpRouter, baseline::DvmrpConfig>(
      "DVMRP", ip::Protocol::kIgmp,
      [](const workload::GeneratedTopology&) { return baseline::DvmrpConfig{}; },
      [](const baseline::DvmrpRouter& r) { return r.state_entries(); }));

  Table table({"protocol", "state entries", "routers w/ state", "delivery",
               "1st-pkt stretch", "steady stretch", "data bytes on links"});
  for (const Result& r : results) {
    table.row({r.name, fmt_int(r.state_entries),
               fmt_int(r.routers_with_state), fmt(r.delivery_ratio * 100, 1) + "%",
               fmt(r.first_packet_stretch, 2), fmt(r.steady_stretch, 2),
               fmt_int(r.data_link_bytes)});
  }
  table.print();

  note("");
  note("expected shapes (paper): EXPRESS holds state only on the source");
  note("tree, stretch ~1 from the first packet; PIM-SM's first packet takes");
  note("the register/RP detour and its state doubles once (S,G) trees form;");
  note("CBT stays state-lean but every packet detours through the core;");
  note("DVMRP's first packet floods the whole domain — every router ends up");
  note("with (S,G) state and off-tree links carry wasted bytes.");
  return 0;
}
