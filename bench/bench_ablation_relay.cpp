// Ablation: per-source channels vs one shared session-relay channel
// (§4.4/§4.5 — the EXPRESS version of PIM-SM's shared-vs-source-tree
// tradeoff, except the *application* chooses).
//
// k speakers address n listeners. Option A: every speaker sources its
// own channel (k trees: lowest delay, k x state). Option B: all
// speakers relay through one SR channel (1 tree + unicast legs: ~half
// the state at k=2, growing savings with k, but relay delay).
#include <memory>

#include "common.hpp"
#include "testbed/testbed.hpp"
#include "relay/participant.hpp"
#include "relay/session_relay.hpp"

namespace {

using namespace express;

struct Option {
  std::size_t fib_entries = 0;
  double mean_delay_ms = 0;
};

Option per_source_channels(std::size_t speakers) {
  Testbed bed(workload::make_kary_tree(2, 3));  // 8 hosts
  // Speakers are hosts 0..k-1; every host subscribes to every channel.
  std::vector<ip::ChannelId> channels;
  for (std::size_t s = 0; s < speakers; ++s) {
    channels.push_back(bed.receiver(s).allocate_channel());
  }
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    for (const auto& ch : channels) bed.receiver(i).new_subscription(ch);
  }
  bed.run_for(sim::seconds(1));

  Option out;
  double delay_sum = 0;
  std::uint64_t deliveries = 0;
  for (std::size_t s = 0; s < speakers; ++s) {
    const sim::Time sent = bed.net().now();
    bed.receiver(s).send(channels[s], 500, s);
    bed.run_for(sim::seconds(1));
    for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
      if (i == s) continue;
      for (const auto& d : bed.receiver(i).deliveries()) {
        if (d.channel == channels[s]) {
          delay_sum += sim::to_seconds(d.at - sent) * 1e3;
          ++deliveries;
        }
      }
    }
  }
  out.fib_entries = bed.total_fib_entries();
  out.mean_delay_ms = deliveries ? delay_sum / deliveries : 0;
  return out;
}

Option shared_relay(std::size_t speakers) {
  Testbed bed(workload::make_kary_tree(2, 3));
  relay::SessionRelay sr(bed.source(), relay::RelayConfig{});
  std::vector<std::unique_ptr<relay::Participant>> participants;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    participants.push_back(std::make_unique<relay::Participant>(
        bed.receiver(i), sr.channel(), bed.source().address()));
    sr.authorize(bed.receiver(i).address());
    participants.back()->join();
  }
  bed.run_for(sim::seconds(1));
  sr.start();
  bed.run_for(sim::seconds(1));

  Option out;
  double delay_sum = 0;
  std::uint64_t deliveries = 0;
  for (std::size_t s = 0; s < speakers; ++s) {
    const sim::Time sent = bed.net().now();
    const std::size_t before = participants[(s + 1) % 8]->deliveries().size();
    (void)before;
    participants[s]->speak(500);
    bed.run_for(sim::seconds(1));
    for (std::size_t i = 0; i < participants.size(); ++i) {
      if (i == s) continue;
      const auto& ds = participants[i]->deliveries();
      if (!ds.empty() && ds.back().speaker == bed.receiver(s).address()) {
        delay_sum += sim::to_seconds(ds.back().at - sent) * 1e3;
        ++deliveries;
      }
    }
  }
  out.fib_entries = bed.total_fib_entries();
  out.mean_delay_ms = deliveries ? delay_sum / deliveries : 0;
  return out;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("ABL-relay / §4.4", "per-source channels vs shared SR channel");
  Table table({"speakers k", "structure", "FIB entries", "mean delay (ms)"});
  for (std::size_t k : {2u, 4u, 8u}) {
    const Option direct = per_source_channels(k);
    table.row({fmt_int(k), "k channels", fmt_int(direct.fib_entries),
               fmt(direct.mean_delay_ms, 2)});
    const Option relayed = shared_relay(k);
    table.row({fmt_int(k), "1 SR channel", fmt_int(relayed.fib_entries),
               fmt(relayed.mean_delay_ms, 2)});
  }
  table.print();
  note("k channels: state grows ~linearly in k, delay is direct-path;");
  note("one SR channel: state is flat in k, delay pays the unicast leg to");
  note("the relay. §4.4: \"the number of channels necessary is");
  note("intrinsically small because it is simply not productive to have");
  note("meetings with large numbers of active speakers\" — and the choice");
  note("belongs to the application, unlike PIM-SM's network-level policy.");
  return 0;
}
