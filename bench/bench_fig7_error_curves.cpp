// F7 (Fig. 7): error tolerance curves used in the proactive-counting
// simulations: e(dt) = clamp(e_max * (-ln(dt/tau))/alpha, 0, e_max),
// tau = 120, e_max = 0.3, alpha in {4, 2.5}.
#include "common.hpp"
#include "counting/error_curve.hpp"

int main() {
  using namespace express;
  using namespace express::bench;

  banner("F7 / Fig. 7", "error tolerance curves (tau=120, e_max=0.3)");
  counting::ErrorCurve tight(counting::CurveParams{0.3, 120, 4.0});
  counting::ErrorCurve loose(counting::CurveParams{0.3, 120, 2.5});

  Table table({"dt (s)", "tolerance alpha=4", "tolerance alpha=2.5"});
  for (int dt = 0; dt <= 70; dt += 5) {
    table.row({fmt_int(static_cast<std::uint64_t>(dt)),
               fmt(tight.tolerance(dt), 4), fmt(loose.tolerance(dt), 4)});
  }
  table.row({"120 (= tau)", fmt(tight.tolerance(120), 4),
             fmt(loose.tolerance(120), 4)});
  table.print();

  note("");
  note("inverse reading — how long a router sits on a given drift before");
  note("pushing a Count upstream:");
  Table inverse({"relative error", "send after (s), alpha=4",
                 "send after (s), alpha=2.5"});
  for (double err : {0.01, 0.05, 0.10, 0.20, 0.30}) {
    inverse.row({fmt(err, 2), fmt(tight.time_until_send(err), 1),
                 fmt(loose.time_until_send(err), 1)});
  }
  inverse.print();
  note("alpha=4 tolerates less error at every dt (tighter tracking, more");
  note("messages); both curves share e_max and the tau-second deadline by");
  note("which any change, however small, is reported.");
  return 0;
}
