// Shared output helpers for the benchmark binaries.
//
// Every bench prints the rows/series of one of the paper's figures or
// in-text measurements; these helpers keep the tables aligned and the
// headers uniform so EXPERIMENTS.md can quote them directly.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace express::bench {

inline void banner(const std::string& experiment, const std::string& title) {
  std::printf("\n=== %s — %s ===\n", experiment.c_str(), title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("  ");
      for (std::size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule += std::string(widths[c], '-') + "  ";
    }
    std::printf("  %s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_int(std::uint64_t v) { return std::to_string(v); }

inline std::string fmt_dollars(double v, int decimals = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "$%.*f", decimals, v);
  return buf;
}

}  // namespace express::bench
