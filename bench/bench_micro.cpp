// Google-benchmark microbenchmarks for the hot paths the §5.3 analysis
// cares about: FIB lookup, ECMP codec, subscription-event processing,
// routing recomputation, and the error-curve evaluation.
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "counting/error_curve.hpp"
#include "ecmp/codec.hpp"
#include "express/fib.hpp"
#include "express/router.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "sim/random.hpp"
#include "workload/topo_gen.hpp"

namespace {

using namespace express;

ip::ChannelId channel_n(std::uint32_t n) {
  return ip::ChannelId{ip::Address(10, 0, 0, 1), ip::Address::single_source(n)};
}

void BM_FibLookupHit(benchmark::State& state) {
  Fib fib;
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < entries; ++i) {
    FibEntry& e = fib.upsert(channel_n(i));
    e.iif = 0;
    e.oifs.set(3);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.lookup(channel_n(i), 0));
    i = (i + 2654435761u) % entries;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FibLookupHit)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_FibLookupMiss(benchmark::State& state) {
  Fib fib;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    fib.upsert(channel_n(i)).iif = 0;
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.lookup(channel_n(200000 + i), 0));
    i = (i + 1) % 1000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FibLookupMiss);

// Reference row: the same hit workload against std::unordered_map with
// identical lookup semantics (RPF check included), so the FlatFib gain
// is visible side by side in one report.
void BM_UnorderedFibLookupHit(benchmark::State& state) {
  std::unordered_map<ip::ChannelId, FibEntry> fib;
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < entries; ++i) {
    FibEntry& e = fib[channel_n(i)];
    e.iif = 0;
    e.oifs.set(3);
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    auto it = fib.find(channel_n(i));
    const FibEntry* hit =
        (it != fib.end() && it->second.iif == 0) ? &it->second : nullptr;
    benchmark::DoNotOptimize(hit);
    i = (i + 2654435761u) % entries;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedFibLookupHit)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_EcmpEncodeCount(benchmark::State& state) {
  ecmp::Count msg;
  msg.channel = channel_n(7);
  msg.count = 12345;
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    ecmp::encode(ecmp::Message{msg}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcmpEncodeCount);

void BM_EcmpDecodeSegment(benchmark::State& state) {
  // A full 1480-byte segment of 92 Counts, the §5.3 batching unit.
  std::vector<std::uint8_t> segment;
  ecmp::Count msg;
  msg.channel = channel_n(7);
  msg.count = 1;
  for (int i = 0; i < 92; ++i) ecmp::encode(ecmp::Message{msg}, segment);
  for (auto _ : state) {
    auto messages = ecmp::decode_all(segment);
    benchmark::DoNotOptimize(messages.size());
  }
  state.SetItemsProcessed(state.iterations() * 92);
}
BENCHMARK(BM_EcmpDecodeSegment);

void BM_SubscribeEvent(benchmark::State& state) {
  // Full router event: decode + hashed lookup + state + FIB + upstream
  // send — the §5.3 per-event cost.
  net::Topology topo;
  const net::NodeId core = topo.add_router();
  const net::NodeId child = topo.add_router();
  const net::NodeId up = topo.add_router();
  const net::NodeId src = topo.add_host();
  topo.add_link(core, child);
  topo.add_link(core, up);
  topo.add_link(up, src);
  net::Network network(std::move(topo));
  auto& router = network.attach<ExpressRouter>(core);
  struct Sink : net::Node {
    Sink(net::Network& n, net::NodeId i) : net::Node(n, i) {}
    void handle_packet(const net::Packet&, std::uint32_t) override {}
  };
  network.attach<Sink>(child);
  network.attach<Sink>(up);
  network.attach<Sink>(src);
  const ip::Address src_addr = network.topology().node(src).address;

  std::uint32_t i = 0;
  std::int64_t toggle = 1;
  for (auto _ : state) {
    ecmp::Count msg;
    msg.channel =
        ip::ChannelId{src_addr, ip::Address::single_source(i % 4096)};
    msg.count = toggle;
    net::Packet packet;
    packet.src = network.topology().node(child).address;
    packet.dst = network.topology().node(core).address;
    packet.protocol = ip::Protocol::kEcmp;
    packet.payload = ecmp::encode(ecmp::Message{msg});
    router.handle_packet(packet, 0);
    if (++i % 4096 == 0) {
      toggle = 1 - toggle;  // alternate subscribe/unsubscribe sweeps
      state.PauseTiming();
      network.run();  // drain queued upstream messages
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubscribeEvent);

void BM_DijkstraRecompute(benchmark::State& state) {
  sim::Rng rng(3);
  auto g = workload::make_transit_stub(
      static_cast<std::uint32_t>(state.range(0)), 3, 2, rng);
  net::UnicastRouting routing(g.topology);
  for (auto _ : state) {
    routing.recompute();
    benchmark::DoNotOptimize(routing.version());
  }
}
BENCHMARK(BM_DijkstraRecompute)->Arg(4)->Arg(16);

void BM_ErrorCurveEvaluate(benchmark::State& state) {
  counting::ErrorCurve curve(counting::CurveParams{0.3, 120, 4});
  double dt = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.tolerance(dt));
    dt += 0.1;
    if (dt > 119) dt = 0.1;
  }
}
BENCHMARK(BM_ErrorCurveEvaluate);

}  // namespace

BENCHMARK_MAIN();
