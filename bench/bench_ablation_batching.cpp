// Ablation: ECMP segment batching (§5.3's 92-Counts-per-segment).
//
// Mass churn across many channels with and without the TCP-mode
// coalescing window: same protocol outcome, far fewer packets and
// header bytes on the wire.
#include "common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace express;

struct BatchRun {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::size_t residual_state = 0;
};

BatchRun run(std::optional<sim::Duration> window, std::uint32_t channels) {
  RouterConfig config;
  config.batch_window = window;
  Testbed bed(workload::make_kary_tree(2, 3, {}, 4), config);  // 32 hosts
  std::vector<ip::ChannelId> chs;
  for (std::uint32_t c = 0; c < channels; ++c) {
    chs.push_back(bed.source().allocate_channel());
  }
  const std::uint64_t packets0 = bed.net().stats().packets_sent;
  const std::uint64_t bytes0 = bed.net().stats().bytes_sent;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    for (const auto& ch : chs) bed.receiver(i).new_subscription(ch);
  }
  bed.run_for(sim::seconds(2));
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    for (const auto& ch : chs) bed.receiver(i).delete_subscription(ch);
  }
  bed.run_for(sim::seconds(2));
  BatchRun out;
  out.packets = bed.net().stats().packets_sent - packets0;
  out.bytes = bed.net().stats().bytes_sent - bytes0;
  out.residual_state = bed.total_fib_entries();
  return out;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("ABL-batching / §5.3", "segment coalescing of ECMP messages");
  Table table({"channels", "mode", "control packets", "wire bytes",
               "packets saved"});
  for (std::uint32_t channels : {8u, 32u, 64u}) {
    const BatchRun plain = run(std::nullopt, channels);
    const BatchRun batched = run(sim::milliseconds(5), channels);
    table.row({fmt_int(channels), "1 msg/packet", fmt_int(plain.packets),
               fmt_int(plain.bytes), "-"});
    table.row({fmt_int(channels), "batched 5 ms", fmt_int(batched.packets),
               fmt_int(batched.bytes),
               fmt((1.0 - static_cast<double>(batched.packets) /
                              static_cast<double>(plain.packets)) *
                       100,
                   0) +
                   "%"});
    if (plain.residual_state != 0 || batched.residual_state != 0) {
      note("WARNING: residual state after teardown!");
    }
  }
  table.print();
  note("coalescing preserves the protocol outcome (full teardown both");
  note("ways) while collapsing per-message IP/packet overhead — the");
  note("TCP-stream behaviour behind the paper's 92-per-segment figure.");
  return 0;
}
