// PARALLEL — sharded-engine throughput and cross-K counter equality.
//
// Runs one pinned §5-scale workload (a wide k-ary router tree, every
// receiver subscribed, seeded join/leave churn plus periodic channel
// data) under the plain single-threaded network and under the parallel
// engine at K = 1, 2, 4 shards, worker threads = min(K, cores). Two
// things are reported per mode:
//
//   * throughput — wire events (packets put on links) per wall-clock
//     second; the scenario is fixed, so modes compare directly;
//   * equality — the NetworkStats wire counters must be byte-equal to
//     the plain run's in every mode (the DESIGN.md §13 contract; the
//     trace-level version is gated by scripts/obs_golden.sh --shards).
//
// scripts/bench_gate.sh guards the committed BENCH_parallel.json: the
// equality flags must stay true and the K=1 (passthrough) throughput
// must not regress. Speedups are reported, not gated — this simulator
// is event-dominated, and on small windows the barrier overhead can
// eat the parallel win; the bench exists to keep the engine honest,
// not to promise linear scaling.
//
//   ./build/bench/bench_parallel --out BENCH_parallel.json   # full
//   ./build/bench/bench_parallel --quick --out /dev/null     # CI smoke
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "net/network.hpp"
#include "net/sharding.hpp"
#include "sim/parallel.hpp"
#include "testbed/testbed.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace {

using namespace express;

struct ModeResult {
  double wall_s = 0;
  net::NetworkStats wire{};
  sim::ParallelStats par{};
  std::uint64_t routers = 0;
  std::uint64_t receivers = 0;
};

bool wire_equal(const net::NetworkStats& a, const net::NetworkStats& b) {
  return a.packets_sent == b.packets_sent && a.bytes_sent == b.bytes_sent &&
         a.packets_dropped_link_down == b.packets_dropped_link_down &&
         a.packets_dropped_no_route == b.packets_dropped_no_route &&
         a.packets_dropped_ttl == b.packets_dropped_ttl &&
         a.packets_dropped_loss == b.packets_dropped_loss &&
         a.packets_reordered == b.packets_reordered;
}

/// The pinned workload: subscribe everyone, churn a third of the
/// receivers, stream periodic data on several channels. Every event is
/// scheduled on the acting node's own shard so all modes see identical
/// per-shard input streams.
ModeResult run_mode(bool quick, std::uint32_t shards, unsigned workers) {
  const auto generated = quick ? workload::make_kary_tree(2, 3, {}, 2)
                               : workload::make_kary_tree(4, 3, {}, 4);
  Testbed bed(generated, TestbedOptions{.shards = shards, .workers = workers});
  net::Network& net = bed.net();
  const net::NodeId source_node = bed.roles().source_host;

  constexpr std::uint32_t kChannels = 4;
  std::vector<ip::ChannelId> channels;
  {
    net::ShardContext ctx(net, source_node);
    for (std::uint32_t c = 0; c < kChannels; ++c) {
      channels.push_back(bed.source().allocate_channel());
    }
  }
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    const net::NodeId node = bed.roles().receiver_hosts[i];
    net.scheduler_for(node).schedule_at(
        sim::milliseconds(1), [&bed, &channels, i] {
          for (const auto& ch : channels) {
            bed.receiver(i).new_subscription(ch);
          }
        });
  }

  const sim::Duration horizon = quick ? sim::seconds(5) : sim::seconds(20);
  sim::Rng rng(7);
  const auto churn = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count() / 3 + 1), horizon,
      sim::seconds(3), sim::seconds(3), rng);
  for (const auto& ev : churn) {
    const net::NodeId node = bed.roles().receiver_hosts[ev.host_index];
    net.scheduler_for(node).schedule_at(ev.at, [&bed, &channels, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channels[0]);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channels[0]);
      }
    });
  }
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(50); at < horizon;
       at += sim::milliseconds(50)) {
    net.scheduler_for(source_node)
        .schedule_at(at, [&bed, &channels, s = seq++] {
          bed.source().send(channels[s % channels.size()], 700, s);
        });
  }

  const auto start = std::chrono::steady_clock::now();
  net.run();
  const auto stop = std::chrono::steady_clock::now();

  ModeResult r;
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.wire = net.stats();
  r.par = net.parallel_stats();
  r.routers = bed.router_count();
  r.receivers = bed.receiver_count();
  return r;
}

double events_per_sec(const ModeResult& r) {
  return r.wall_s > 0 ? static_cast<double>(r.wire.packets_sent) / r.wall_s
                      : 0.0;
}

void write_mode_json(std::FILE* f, const char* key, const ModeResult& r,
                     bool match, const char* trailer) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"wall_s\": %.4f,\n", r.wall_s);
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n", events_per_sec(r));
  std::fprintf(f, "    \"packets_sent\": %llu,\n",
               static_cast<unsigned long long>(r.wire.packets_sent));
  std::fprintf(f, "    \"bytes_sent\": %llu,\n",
               static_cast<unsigned long long>(r.wire.bytes_sent));
  std::fprintf(f, "    \"windows\": %llu,\n",
               static_cast<unsigned long long>(r.par.windows));
  std::fprintf(f, "    \"cross_shard_events\": %llu,\n",
               static_cast<unsigned long long>(r.par.cross_shard_events));
  std::fprintf(f, "    \"counters_match_plain\": %s\n",
               match ? "true" : "false");
  std::fprintf(f, "  }%s\n", trailer);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace express::bench;
  bool quick = false;
  std::string out = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  banner("PARALLEL", "sharded engine: throughput + cross-K wire equality");
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const ModeResult plain = run_mode(quick, 0, 1);
  const ModeResult k1 = run_mode(quick, 1, 1);
  const ModeResult k2 = run_mode(quick, 2, std::min(2u, cores));
  const ModeResult k4 = run_mode(quick, 4, std::min(4u, cores));

  const bool m1 = wire_equal(plain.wire, k1.wire);
  const bool m2 = wire_equal(plain.wire, k2.wire);
  const bool m4 = wire_equal(plain.wire, k4.wire);

  Table table({"mode", "wall s", "events/s", "packets", "windows",
               "cross events", "wire == plain"});
  auto row = [&table](const char* mode, const ModeResult& r, bool match) {
    table.row({mode, fmt(r.wall_s, 3), fmt(events_per_sec(r), 0),
               fmt_int(r.wire.packets_sent), fmt_int(r.par.windows),
               fmt_int(r.par.cross_shard_events),
               match ? "yes" : "NO"});
  };
  row("plain", plain, true);
  row("k1", k1, m1);
  row("k2", k2, m2);
  row("k4", k4, m4);
  table.print();
  note("scenario: " + fmt_int(plain.routers) + " routers, " +
       fmt_int(plain.receivers) + " receivers, churn + 4-channel data;");
  note("equality = every NetworkStats wire counter identical to plain.");

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_parallel\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"routers\": %llu,\n",
               static_cast<unsigned long long>(plain.routers));
  std::fprintf(f, "  \"receivers\": %llu,\n",
               static_cast<unsigned long long>(plain.receivers));
  write_mode_json(f, "plain", plain, true, ",");
  write_mode_json(f, "k1", k1, m1, ",");
  write_mode_json(f, "k2", k2, m2, ",");
  write_mode_json(f, "k4", k4, m4, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", out.c_str());
  return (m1 && m2 && m4) ? 0 : 1;
}
