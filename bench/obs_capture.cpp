// obs_capture: record the observability plane for a pinned seeded
// scenario and export it as artifacts. The default run is the same
// seeded-churn scenario test_determinism pins counter-by-counter; the
// sharding flags turn the binary into the A/B probe scripts/
// obs_golden.sh uses to prove the parallel engine deterministic
// (DESIGN.md §13):
//
//   --seed N            scenario RNG seed (default 7, the pinned run)
//   --trace-out P       event trace JSONL (default trace.jsonl)
//   --metrics-out P     metrics registry snapshot JSON (default metrics.json)
//   --scenario S        churn (default) or chaos (fault campaign)
//   --shards K          0 = plain network (default); >=1 = sharded via
//                       the parallel engine (1 = passthrough mode)
//   --workers N         worker threads for sharded windows (default 1)
//   --trace-cap N       trace ring capacity (default 1<<16; raise it if
//                       a lane wraps — merged exports refuse wrapped rings)
//   --merged            export obs::merged_trace_jsonl over all lanes
//                       (raw per-lane records; worker-count invariant)
//   --canonical         export obs::canonical_trace_jsonl (content-
//                       sorted, kTimerFire elided; shard-count invariant)
//   --normalized-snapshot  zero the sim.sched.* scheduler-mechanics
//                       metrics before snapshotting, so snapshots
//                       compare across shard layouts (event counts are
//                       execution mechanics, not protocol behavior)
//
// Two runs with the same flags must produce byte-identical files; diff
// divergent captures with scripts/tracediff.py to find the first event
// where the runs disagree (see DESIGN.md §11/§13, EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "audit/invariants.hpp"
#include "net/sharding.hpp"
#include "obs/obs.hpp"
#include "testbed/testbed.hpp"
#include "workload/chaos.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace {

using namespace express;

struct Options {
  std::uint64_t seed = 7;
  std::string trace_out = "trace.jsonl";
  std::string metrics_out = "metrics.json";
  std::string scenario = "churn";
  std::uint32_t shards = 0;
  unsigned workers = 1;
  std::size_t trace_cap = 1 << 16;
  bool merged = false;
  bool canonical = false;
  bool normalized_snapshot = false;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: obs_capture [--seed N] [--trace-out P] "
               "[--metrics-out P]\n"
               "                   [--scenario churn|chaos] [--shards K] "
               "[--workers N]\n"
               "                   [--trace-cap N] [--merged] [--canonical] "
               "[--normalized-snapshot]\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg("--seed")) {
      opt.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg("--trace-out")) {
      opt.trace_out = next();
    } else if (arg("--metrics-out")) {
      opt.metrics_out = next();
    } else if (arg("--scenario")) {
      opt.scenario = next();
      if (opt.scenario != "churn" && opt.scenario != "chaos") usage();
    } else if (arg("--shards")) {
      opt.shards = static_cast<std::uint32_t>(
          std::strtoul(next(), nullptr, 10));
    } else if (arg("--workers")) {
      opt.workers = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg("--trace-cap")) {
      opt.trace_cap = static_cast<std::size_t>(
          std::strtoull(next(), nullptr, 10));
    } else if (arg("--merged")) {
      opt.merged = true;
    } else if (arg("--canonical")) {
      opt.canonical = true;
    } else if (arg("--normalized-snapshot")) {
      opt.normalized_snapshot = true;
    } else {
      usage();
    }
  }
  return opt;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs_capture: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

/// Mirror of test_determinism's run_seeded_churn: 16 receivers over a
/// binary router tree, Poisson join/leave churn, periodic channel data.
/// Every scenario event is scheduled on the acting node's own shard
/// (net::Network::scheduler_for), so identical flags produce the same
/// per-shard event streams regardless of shard count.
void run_churn(Testbed& bed, std::uint64_t seed) {
  net::Network& net = bed.net();
  const net::NodeId source_node = bed.roles().source_host;
  ip::ChannelId channel{};
  {
    net::ShardContext ctx(net, source_node);
    channel = bed.source().allocate_channel();
  }

  sim::Rng rng(seed);
  const sim::Duration horizon = sim::seconds(10);
  const auto events = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count()), horizon,
      sim::seconds(5), sim::seconds(3), rng);
  for (const auto& ev : events) {
    const net::NodeId node = bed.roles().receiver_hosts[ev.host_index];
    net.scheduler_for(node).schedule_at(ev.at, [&bed, channel, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channel);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channel);
      }
    });
  }
  const std::vector<std::uint8_t> header(32, 0x5A);
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(200); at < horizon;
       at += sim::milliseconds(200)) {
    net.scheduler_for(source_node)
        .schedule_at(at, [&bed, channel, header, s = seq++] {
          bed.source().send(channel, 500, s, header);
        });
  }
  net.run();
}

/// A short deterministic fault campaign over the same tree: every
/// receiver subscribed, link flaps / router deaths / partitions drawn
/// from `seed`, churn plus periodic data scheduled into each fault
/// window, the invariant auditor sampled through every settle phase.
void run_chaos(Testbed& bed, std::uint64_t seed) {
  net::Network& net = bed.net();
  const net::NodeId source_node = bed.roles().source_host;
  ip::ChannelId channel{};
  {
    net::ShardContext ctx(net, source_node);
    channel = bed.source().allocate_channel();
  }
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    const net::NodeId node = bed.roles().receiver_hosts[i];
    net.scheduler_for(node).schedule_at(sim::milliseconds(1), [&bed, channel,
                                                              i] {
      bed.receiver(i).new_subscription(channel);
    });
  }
  net.run_until(sim::milliseconds(100));

  workload::FaultPlanConfig plan;
  plan.fault_count = 6;
  sim::Rng fault_rng(seed);
  const auto schedule =
      workload::make_fault_schedule(net.topology(), plan, fault_rng);

  sim::Rng churn_rng(seed ^ 0x5DEECE66DULL);
  std::uint64_t seq = 0;
  auto churn = [&](std::size_t) {
    const auto events = workload::poisson_churn(
        static_cast<std::uint32_t>(bed.receiver_count() - 1), sim::seconds(4),
        sim::seconds(2), sim::seconds(2), churn_rng);
    for (const auto& ev : events) {
      // Churn over receivers 1..n-1; receiver 0 stays subscribed so the
      // channel tree never collapses mid-fault.
      const std::size_t idx = ev.host_index + 1;
      const net::NodeId node = bed.roles().receiver_hosts[idx];
      net.scheduler_for(node).schedule_at(
          net.now() + (ev.at - sim::Time{}), [&bed, channel, idx, ev] {
            if (ev.join) {
              bed.receiver(idx).new_subscription(channel);
            } else {
              bed.receiver(idx).delete_subscription(channel);
            }
          });
    }
    for (int k = 0; k < 10; ++k) {
      net.scheduler_for(source_node)
          .schedule_at(net.now() + sim::milliseconds(50 * (k + 1)),
                       [&bed, channel, &seq] {
                         bed.source().send(channel, 300, ++seq);
                       });
    }
  };
  auto audit = [&net] {
    return audit::InvariantAuditor(net).run().violations.size();
  };
  const workload::ChaosReport report = workload::run_chaos_campaign(
      net, schedule, workload::ChaosConfig{}, audit, churn);
  if (report.unconverged != 0 || report.violations != 0) {
    std::fprintf(stderr, "obs_capture: chaos campaign dirty (%llu/%llu)\n",
                 static_cast<unsigned long long>(report.unconverged),
                 static_cast<unsigned long long>(report.violations));
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  Testbed bed(workload::make_kary_tree(2, 3, {}, 2),
              TestbedOptions{.shards = opt.shards, .workers = opt.workers});
  net::Network& net = bed.net();
  net.obs().trace.enable(opt.trace_cap);

  if (opt.scenario == "chaos") {
    run_chaos(bed, opt.seed);
  } else {
    run_churn(bed, opt.seed);
  }

  std::string trace_body;
  if (opt.canonical) {
    trace_body = obs::canonical_trace_jsonl(net.trace_lanes());
  } else if (opt.merged) {
    trace_body = obs::merged_trace_jsonl(net.trace_lanes());
  } else {
    trace_body = net.obs().trace.to_jsonl();
  }
  if (!write_file(opt.trace_out, trace_body)) return 1;

  sim::Time stamp = net.now();
  if (opt.normalized_snapshot) {
    // Re-registering zeroes the slot (obs::Registry contract): wipe the
    // scheduler-mechanics metrics, which legitimately differ between
    // shard layouts (batching, per-shard schedulers) while every
    // protocol-level metric must still match exactly. The quiescence
    // wall-stamp is layout mechanics too (it is whatever instant the
    // last shard-0 event ran at), so normalized snapshots stamp zero.
    obs::Registry& reg = net.obs().registry;
    const obs::Entity e = obs::Entity::network();
    reg.counter("sim.sched.scheduled", e);
    reg.counter("sim.sched.executed", e);
    reg.counter("sim.sched.cancelled", e);
    reg.counter("sim.sched.clamped_past", e);
    reg.gauge("sim.sched.peak_pending", e);
    stamp = sim::Time{};
  }
  if (!write_file(opt.metrics_out, net.obs().registry.snapshot_json(stamp))) {
    return 1;
  }

  std::uint64_t events = 0;
  for (const obs::Trace* lane : net.trace_lanes()) events += lane->next_index();
  std::printf(
      "obs_capture: scenario=%s seed=%llu shards=%u workers=%u events=%llu "
      "metrics=%zu -> %s, %s\n",
      opt.scenario.c_str(), static_cast<unsigned long long>(opt.seed),
      opt.shards, opt.workers, static_cast<unsigned long long>(events),
      net.obs().registry.size(), opt.trace_out.c_str(),
      opt.metrics_out.c_str());
  return 0;
}
