// obs_capture: record the observability plane for the pinned seeded
// churn scenario (the same run test_determinism pins counter-by-
// counter) and export it as artifacts:
//
//   --seed N          churn RNG seed (default 7, the pinned scenario)
//   --trace-out P     event trace as canonical JSONL (default trace.jsonl)
//   --metrics-out P   metrics registry snapshot JSON (default metrics.json)
//
// Two runs with the same seed must produce byte-identical files; diff
// divergent captures with scripts/tracediff.py to find the first event
// where the runs disagree (see DESIGN.md §11 / EXPERIMENTS.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testbed/testbed.hpp"
#include "obs/obs.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace {

struct Options {
  std::uint64_t seed = 7;
  std::string trace_out = "trace.jsonl";
  std::string metrics_out = "metrics.json";
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      opt.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      opt.metrics_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: obs_capture [--seed N] [--trace-out P] "
                   "[--metrics-out P]\n");
      std::exit(2);
    }
  }
  return opt;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs_capture: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace express;
  const Options opt = parse(argc, argv);

  // Mirror of test_determinism's run_seeded_churn: 16 receivers over a
  // binary router tree, Poisson join/leave churn, periodic channel data.
  Testbed bed(workload::make_kary_tree(2, 3, {}, 2));
  bed.net().obs().trace.enable(1 << 16);  // retains the whole scenario
  const ip::ChannelId channel = bed.source().allocate_channel();

  sim::Rng rng(opt.seed);
  const sim::Duration horizon = sim::seconds(10);
  const auto events = workload::poisson_churn(
      static_cast<std::uint32_t>(bed.receiver_count()), horizon,
      sim::seconds(5), sim::seconds(3), rng);

  auto& sched = bed.net().scheduler();
  for (const auto& ev : events) {
    sched.schedule_at(ev.at, [&bed, &channel, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channel);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channel);
      }
    });
  }
  const std::vector<std::uint8_t> header(32, 0x5A);
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(200); at < horizon;
       at += sim::milliseconds(200)) {
    sched.schedule_at(at, [&bed, &channel, &header, s = seq++] {
      bed.source().send(channel, 500, s, header);
    });
  }
  bed.net().run();

  const obs::Plane& plane = bed.net().obs();
  if (!write_file(opt.trace_out, plane.trace.to_jsonl())) return 1;
  if (!write_file(opt.metrics_out,
                  plane.registry.snapshot_json(bed.net().now()))) {
    return 1;
  }
  std::printf("obs_capture: seed=%llu events=%llu metrics=%zu -> %s, %s\n",
              static_cast<unsigned long long>(opt.seed),
              static_cast<unsigned long long>(plane.trace.next_index()),
              plane.registry.size(), opt.trace_out.c_str(),
              opt.metrics_out.c_str());
  return 0;
}
