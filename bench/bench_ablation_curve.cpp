// Ablation: proactive-counting parameter sweep (alpha, tau).
//
// Fig. 8 shows two points of a whole design space; this sweep maps the
// accuracy/bandwidth frontier so a deployment can pick parameters (the
// paper: "reasonable parameter choices give a useful level of accuracy
// at modest network cost").
#include <map>

#include "common.hpp"
#include "testbed/testbed.hpp"
#include "workload/churn.hpp"

namespace {

using namespace express;

struct SweepPoint {
  std::uint64_t router_counts = 0;  // network-wide Count messages
  double mean_abs_error = 0;
};

SweepPoint run(double alpha, double tau,
               const std::vector<workload::ChurnEvent>& schedule,
               const std::map<int, std::int64_t>& actual) {
  RouterConfig config;
  config.proactive = counting::CurveParams{0.3, tau, alpha};
  Testbed bed(workload::make_kary_tree(2, 5, {}, 8), config);
  const ip::ChannelId ch = bed.source().allocate_channel();
  for (const auto& event : schedule) {
    bed.net().scheduler().schedule_at(event.at, [&bed, &ch, event]() {
      if (event.join) {
        bed.receiver(event.host_index).new_subscription(ch);
      } else {
        bed.receiver(event.host_index).delete_subscription(ch);
      }
    });
  }
  SweepPoint point;
  double error_sum = 0;
  int samples = 0;
  ExpressRouter& root = bed.source_router();
  for (int t = 0; t <= 400; t += 2) {
    bed.net().scheduler().schedule_at(sim::seconds(t), [&, t]() {
      error_sum +=
          std::abs(static_cast<double>(root.subtree_count(ch) - actual.at(t)));
      ++samples;
    });
  }
  bed.run_for(sim::seconds(401));
  for (std::size_t i = 0; i < bed.router_count(); ++i) {
    point.router_counts += bed.router(i).stats().counts_sent;
  }
  point.mean_abs_error = error_sum / samples;
  return point;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("ABL-curve / §6", "proactive counting (alpha, tau) sweep");
  sim::Rng rng(2026);
  workload::Fig8Params params;
  const auto schedule = workload::fig8_schedule(params, rng);
  std::map<int, std::int64_t> actual;
  {
    std::int64_t current = 0;
    std::size_t next = 0;
    for (int t = 0; t <= 400; t += 2) {
      while (next < schedule.size() && schedule[next].at <= sim::seconds(t)) {
        current += schedule[next].join ? 1 : -1;
        ++next;
      }
      actual[t] = current;
    }
  }

  Table table({"alpha", "tau (s)", "Count msgs (network)", "mean |error|"});
  for (double tau : {30.0, 120.0, 300.0}) {
    for (double alpha : {1.5, 2.5, 4.0, 8.0}) {
      const SweepPoint p = run(alpha, tau, schedule, actual);
      table.row({fmt(alpha, 1), fmt(tau, 0), fmt_int(p.router_counts),
                 fmt(p.mean_abs_error, 1)});
    }
  }
  table.print();
  note("the frontier: larger alpha or smaller tau buys accuracy with");
  note("messages; Fig. 8's (4, 120) and (2.5, 120) are two points on it.");
  return 0;
}
