// F8 (Fig. 8): error convergence and bandwidth of proactive counting.
//
// The paper's scenario: ~250 subscribers over 400 s — a burst at t=0,
// a trickle until t=200, a second burst at t=200, quiet until t=300,
// then a fast mass unsubscribe. Upper curve: actual vs estimated group
// size at the tree root, for alpha = 4 and alpha = 2.5 (tau = 120).
// Lower curve: cumulative Count messages delivered to the source side.
#include <algorithm>
#include <map>

#include "common.hpp"
#include "testbed/testbed.hpp"
#include "workload/churn.hpp"

namespace {

using namespace express;

struct Series {
  std::map<int, std::int64_t> estimate;  // sampled every 5 s
  std::map<int, std::uint64_t> messages;
  std::uint64_t total_messages = 0;
  std::uint64_t network_counts = 0;      // Count messages on all links
  std::uint64_t proactive_updates = 0;   // curve-triggered sends only
};

Series run(double alpha, const std::vector<workload::ChurnEvent>& schedule) {
  RouterConfig config;
  config.proactive = counting::CurveParams{0.3, 120.0, alpha};
  // Binary tree with 8 hosts per leaf router: per-router counts are
  // large enough that the error curve (not the immediate-send path for
  // 0 <-> non-zero transitions) governs most updates, as in the paper's
  // large-group setting.
  Testbed bed(workload::make_kary_tree(2, 5, {}, 8), config);  // 256 hosts
  const ip::ChannelId ch = bed.source().allocate_channel();

  for (const auto& event : schedule) {
    bed.net().scheduler().schedule_at(event.at, [&bed, &ch, event]() {
      if (event.join) {
        bed.receiver(event.host_index).new_subscription(ch);
      } else {
        bed.receiver(event.host_index).delete_subscription(ch);
      }
    });
  }

  Series series;
  ExpressRouter& root = bed.source_router();
  const std::uint64_t base_counts = root.stats().counts_received;
  for (int t = 0; t <= 400; t += 5) {
    bed.net().scheduler().schedule_at(sim::seconds(t), [&, t]() {
      series.estimate[t] = root.subtree_count(ch);
      series.messages[t] = root.stats().counts_received - base_counts;
    });
  }
  bed.run_for(sim::seconds(401));
  series.total_messages = root.stats().counts_received - base_counts;
  for (std::size_t i = 0; i < bed.router_count(); ++i) {
    series.network_counts += bed.router(i).stats().counts_sent;
    series.proactive_updates += bed.router(i).stats().proactive_updates_sent;
  }
  return series;
}

}  // namespace

int main() {
  using namespace express::bench;

  banner("F8 / Fig. 8", "proactive counting: convergence and bandwidth");
  sim::Rng rng(2026);
  workload::Fig8Params params;  // 250 subscribers, paper's schedule
  const auto schedule = workload::fig8_schedule(params, rng);

  // True membership over time, from the schedule itself.
  std::map<int, std::int64_t> actual;
  {
    std::int64_t current = 0;
    std::size_t next = 0;
    for (int t = 0; t <= 400; t += 5) {
      while (next < schedule.size() && schedule[next].at <= sim::seconds(t)) {
        current += schedule[next].join ? 1 : -1;
        ++next;
      }
      actual[t] = current;
    }
  }

  const Series tight = run(4.0, schedule);
  const Series loose = run(2.5, schedule);

  Table table({"time (s)", "actual size", "est. a=4", "est. a=2.5",
               "msgs a=4", "msgs a=2.5"});
  for (int t = 0; t <= 400; t += 20) {
    table.row({fmt_int(static_cast<std::uint64_t>(t)),
               fmt_int(static_cast<std::uint64_t>(actual.at(t))),
               fmt_int(static_cast<std::uint64_t>(tight.estimate.at(t))),
               fmt_int(static_cast<std::uint64_t>(loose.estimate.at(t))),
               fmt_int(tight.messages.at(t)), fmt_int(loose.messages.at(t))});
  }
  table.print();

  note("");
  note("Count messages delivered to the source side (root): alpha=4 -> " +
       fmt_int(tight.total_messages) + ", alpha=2.5 -> " +
       fmt_int(loose.total_messages));
  note("network-wide router Counts: alpha=4 -> " +
       fmt_int(tight.network_counts) + " (" + fmt_int(tight.proactive_updates) +
       " curve-triggered), alpha=2.5 -> " + fmt_int(loose.network_counts) +
       " (" + fmt_int(loose.proactive_updates) + ")");
  note("bandwidth ratio alpha=2.5 / alpha=4: root " +
       fmt(static_cast<double>(loose.total_messages) /
               static_cast<double>(tight.total_messages),
           2) +
       ", curve-triggered " +
       fmt(static_cast<double>(loose.proactive_updates) /
               static_cast<double>(std::max<std::uint64_t>(
                   tight.proactive_updates, 1)),
           2) +
       "  (paper: ~2/3 overall)");

  // Tracking error over the run (sampled): alpha=4 should be tighter.
  auto mean_abs_error = [&](const Series& s) {
    double total = 0;
    int samples = 0;
    for (const auto& [t, est] : s.estimate) {
      total += std::abs(static_cast<double>(est - actual.at(t)));
      ++samples;
    }
    return total / samples;
  };
  note("mean |estimate - actual|: alpha=4 -> " + fmt(mean_abs_error(tight), 1) +
       ", alpha=2.5 -> " + fmt(mean_abs_error(loose), 1));
  note("paper: alpha=4 tracks closely; alpha=2.5 lags after the burst but");
  note("uses ~2/3 of the bandwidth.");
  return 0;
}
