// RELIABLE — reliable repair-path harness over a lossy transit-stub.
//
// The paper's reliable-multicast recipe (§2.2.1 + §2.1): multicast the
// blocks, count per-block NACKs through the routers, and repair either
// channel-wide or by subcast through an on-tree router whose subtree
// covers the loss. This bench pins the end-to-end behavior of
// reliable::Publisher::run_to_completion on a transit-stub topology
// with 1% Bernoulli loss localized on one stub's host drop links,
// comparing the two repair modes on identical impairment seeds:
//
//   subcast      — repair_candidates = [lossy stub router]; each round
//                  counts the candidate's loss subtree (remote
//                  kNackTotalId) and repairs through it when it covers.
//   channel_wide — no candidates; every repair floods the channel.
//
// Reported per mode: blocks delivered, repair rounds, repair bytes
// (total link bytes across the repair phase), retransmissions split
// subcast vs channel-wide, and the per-round NACK convergence with its
// round-over-round drift through counting::relative_error — the same
// curve §4.1 uses for proactive updates, here reporting how fast the
// outstanding-NACK count collapses.
//
// Output: a human table and canonical integer-only JSON (byte-identical
// across identically seeded runs — no wall-clock keys):
//
//   ./build/bench/bench_reliable --out BENCH_reliable.json   # full
//   ./build/bench/bench_reliable --quick --out /dev/null     # CI smoke
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "counting/error_curve.hpp"
#include "testbed/testbed.hpp"
#include "net/impairment.hpp"
#include "reliable/publisher.hpp"
#include "sim/random.hpp"
#include "workload/topo_gen.hpp"

namespace {

using namespace express;

constexpr std::uint64_t kImpairmentSeed = 0xE5E5;
constexpr double kLossP = 0.01;       // 1% Bernoulli per lossy link (full)
constexpr double kQuickLossP = 0.05;  // fewer blocks need hotter dice to
                                      // exercise the repair path in smoke runs

struct ModeResult {
  bool delivered_all = false;
  std::uint32_t repair_rounds = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t subcast_repairs = 0;
  std::uint64_t channel_repairs = 0;
  std::uint64_t repair_bytes = 0;  ///< link bytes across the repair phase
  std::int64_t residual_nacks = 0;
  std::uint64_t packets_lost = 0;  ///< impairment drops, whole run
  std::uint64_t subscribers = 0;
  std::uint64_t lossy_links = 0;
  std::vector<std::uint64_t> round_outstanding;  ///< NACK total per round
};

/// One full campaign: build the testbed, localize loss on one stub's
/// host drop links, publish, then drive run_to_completion in the given
/// repair mode. Fresh network + identical seeds per call, so the two
/// modes see the same publish-phase losses.
ModeResult run_mode(bool subcast, std::uint32_t blocks, double loss_p) {
  sim::Rng topo_rng(7);
  Testbed bed(workload::make_transit_stub(4, 3, 2, topo_rng));

  const ip::ChannelId channel = bed.source().allocate_channel();
  std::vector<std::unique_ptr<reliable::Subscriber>> subs;
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    subs.push_back(std::make_unique<reliable::Subscriber>(bed.receiver(i),
                                                          channel, blocks));
  }
  bed.run_for(sim::seconds(2));  // settle joins

  // The lossy stub: the *last* receiver's first-hop router. (The first
  // receiver shares its stub with the source host — subcasting through
  // the source's own router is the whole tree, which would make the
  // §2.1 comparison vacuous.) Impair every host drop cable behind it,
  // so all loss lives in one remote subtree and the candidate's
  // covering test has something to find.
  const net::Topology& topo = bed.net().topology();
  const net::NodeId lossy_host = bed.roles().receiver_hosts.back();
  const net::LinkId drop = topo.node(lossy_host).interfaces.at(0);
  const net::LinkInfo& drop_info = topo.link(drop);
  const net::NodeId stub = drop_info.a == lossy_host ? drop_info.b : drop_info.a;

  net::ImpairmentConfig impair;
  impair.loss.kind = net::LossModel::Kind::kBernoulli;
  impair.loss.p = loss_p;
  ModeResult result;
  bed.net().seed_impairments(kImpairmentSeed);
  for (net::LinkId link : topo.node(stub).interfaces) {
    const net::LinkInfo& info = topo.link(link);
    const net::NodeId other = info.a == stub ? info.b : info.a;
    if (topo.node(other).kind != net::NodeKind::kHost) continue;
    bed.net().set_link_impairments(link, impair);
    ++result.lossy_links;
  }

  reliable::PublisherConfig config;
  if (subcast) config.repair_candidates.push_back(topo.node(stub).address);
  reliable::Publisher publisher(bed.source(), channel, config);
  publisher.publish(blocks);
  bed.run_for(sim::seconds(5));  // drain the publish phase

  // Trace only the repair phase, with room for every per-hop event of
  // several full NACK rounds (a 256-block round floods ~40 links), so
  // no kRepairRoundEnd record of the convergence report is overwritten.
  bed.net().obs().trace.enable(1u << 18);
  const std::uint64_t bytes_before = bed.net().total_link_bytes();
  std::optional<reliable::CompletionReport> report;
  publisher.run_to_completion(
      [&report](reliable::CompletionReport r) { report = r; });
  bed.net().run();
  result.repair_bytes = bed.net().total_link_bytes() - bytes_before;

  if (report) {
    result.repair_rounds = report->rounds;
    result.retransmissions = report->retransmissions;
    result.subcast_repairs = report->subcast_repairs;
    result.channel_repairs = report->channel_repairs;
    result.residual_nacks = report->residual_nacks;
  }
  result.delivered_all = report && report->complete;
  for (const auto& sub : subs) {
    if (!sub->complete()) result.delivered_all = false;
  }
  result.packets_lost = bed.net().stats().packets_dropped_loss;
  result.subscribers = bed.receiver_count();

  const obs::Trace& trace = bed.net().obs().trace;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const obs::TraceRecord& rec = trace.at(i);
    if (rec.type == obs::TraceType::kRepairRoundEnd) {
      result.round_outstanding.push_back(rec.b);
    }
  }
  return result;
}

/// Round-over-round drift of the outstanding-NACK count in ppm,
/// through the §4.1 relative-error curve. Entry i compares round i+1
/// against round i; rounds whose predecessor already hit zero are
/// skipped (the curve reports +inf for transitions from zero).
std::vector<std::int64_t> round_errors_ppm(
    const std::vector<std::uint64_t>& outstanding) {
  std::vector<std::int64_t> ppm;
  for (std::size_t i = 1; i < outstanding.size(); ++i) {
    const auto prev = static_cast<std::int64_t>(outstanding[i - 1]);
    const auto cur = static_cast<std::int64_t>(outstanding[i]);
    if (prev == 0) continue;
    ppm.push_back(std::llround(counting::relative_error(prev, cur) * 1e6));
  }
  return ppm;
}

void write_int_array(std::FILE* f, const char* key,
                     const std::vector<std::int64_t>& values,
                     const char* trailer) {
  std::fprintf(f, "    \"%s\": [", key);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::fprintf(f, "%s%lld", i == 0 ? "" : ", ",
                 static_cast<long long>(values[i]));
  }
  std::fprintf(f, "]%s\n", trailer);
}

void write_mode_json(std::FILE* f, const char* key, const ModeResult& r,
                     const char* trailer) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"delivered_all\": %s,\n",
               r.delivered_all ? "true" : "false");
  std::fprintf(f, "    \"repair_rounds\": %u,\n", r.repair_rounds);
  std::fprintf(f, "    \"retransmissions\": %llu,\n",
               static_cast<unsigned long long>(r.retransmissions));
  std::fprintf(f, "    \"subcast_repairs\": %llu,\n",
               static_cast<unsigned long long>(r.subcast_repairs));
  std::fprintf(f, "    \"channel_repairs\": %llu,\n",
               static_cast<unsigned long long>(r.channel_repairs));
  std::fprintf(f, "    \"repair_bytes\": %llu,\n",
               static_cast<unsigned long long>(r.repair_bytes));
  std::fprintf(f, "    \"residual_nacks\": %lld,\n",
               static_cast<long long>(r.residual_nacks));
  std::fprintf(f, "    \"packets_lost\": %llu,\n",
               static_cast<unsigned long long>(r.packets_lost));
  std::vector<std::int64_t> rounds(r.round_outstanding.begin(),
                                   r.round_outstanding.end());
  write_int_array(f, "round_outstanding", rounds, ",");
  write_int_array(f, "round_error_ppm", round_errors_ppm(r.round_outstanding),
                  "");
  std::fprintf(f, "  }%s\n", trailer);
}

void write_json(const std::string& path, bool quick, std::uint32_t blocks,
                double loss_p, const ModeResult& sub, const ModeResult& chan) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_reliable: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_reliable\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"blocks\": %u,\n", blocks);
  std::fprintf(f, "  \"subscribers\": %llu,\n",
               static_cast<unsigned long long>(sub.subscribers));
  std::fprintf(f, "  \"loss_model\": \"bernoulli\",\n");
  std::fprintf(f, "  \"loss_p_ppm\": %lld,\n",
               std::llround(loss_p * 1e6));
  std::fprintf(f, "  \"lossy_links\": %llu,\n",
               static_cast<unsigned long long>(sub.lossy_links));
  write_mode_json(f, "subcast", sub, ",");
  write_mode_json(f, "channel_wide", chan, ",");
  std::fprintf(f, "  \"subcast_saves_bytes\": %lld\n",
               static_cast<long long>(chan.repair_bytes) -
                   static_cast<long long>(sub.repair_bytes));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace express::bench;
  bool quick = false;
  std::string out = "BENCH_reliable.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a path\n");
        return 2;
      }
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "error: unknown option '%s'\nusage: %s [--quick] [--out "
                   "<path>]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  banner("RELIABLE", "repair to completion under loss: subcast vs channel");
  const std::uint32_t blocks = quick ? 64 : 256;
  const double loss_p = quick ? kQuickLossP : kLossP;
  const ModeResult sub = run_mode(/*subcast=*/true, blocks, loss_p);
  const ModeResult chan = run_mode(/*subcast=*/false, blocks, loss_p);

  Table table({"mode", "metric", "value"});
  auto emit_rows = [&table](const char* mode, const ModeResult& r) {
    table.row({mode, "delivered_all", r.delivered_all ? "yes" : "NO"});
    table.row({mode, "repair rounds", fmt_int(r.repair_rounds)});
    table.row({mode, "retransmissions", fmt_int(r.retransmissions)});
    table.row({mode, "subcast repairs", fmt_int(r.subcast_repairs)});
    table.row({mode, "channel repairs", fmt_int(r.channel_repairs)});
    table.row({mode, "repair bytes", fmt_int(r.repair_bytes)});
    table.row({mode, "packets lost", fmt_int(r.packets_lost)});
  };
  emit_rows("subcast", sub);
  emit_rows("channel_wide", chan);
  table.print();
  note("same impairment seed in both modes: identical publish-phase loss;");
  note("repair bytes = total link bytes across the repair phase.");
  if (chan.repair_bytes <= sub.repair_bytes) {
    note("WARNING: subcast repair did not save bytes on this run");
  }

  write_json(out, quick, blocks, loss_p, sub, chan);
  return !sub.delivered_all || !chan.delivered_all;
}
