// CORE — simulator-substrate performance harness.
//
// Every experiment in this repo executes on the same two hot paths: the
// discrete-event scheduler and per-hop packet replication. This bench
// pins their performance trajectory across PRs with three measurements:
//
//   1. scheduler  — events/sec through schedule/cancel/dispatch rounds,
//                   run twice: once on sim::Scheduler and once on the
//                   frozen seed replica in legacy_core.hpp, so the
//                   speedup is computed live on the same machine.
//   2. fanout     — ns per link transmission through the full network
//                   stack on a 256-way star (the paper's worst-case
//                   replication shape).
//   3. churn      — end-to-end wall time of a 10k-subscriber join/leave
//                   churn scenario with periodic channel data, the
//                   shape every §5/§6 experiment takes. Deterministic
//                   packet/byte counters are reported so substrate
//                   rewrites can prove they preserved behavior.
//   4. fib        — (S,E) lookups/sec through the FlatFib vs the
//                   node-based unordered_map the FIB used before the
//                   flat rewrite, same probe stream for both.
//   5. timer_wheel — scheduler events/sec on a refresh-timer-heavy
//                   load, wheel-enabled vs heap-only (Scheduler(false)),
//                   the workload shape the hierarchical wheel targets.
//
// Output: a human table on stdout and machine-readable JSON (default
// BENCH_core.json in the working directory; see --out). Run from the
// repo root so the trajectory file lands where EXPERIMENTS.md expects:
//
//   ./build/bench/bench_core --out BENCH_core.json          # full
//   ./build/bench/bench_core --quick --out /dev/null        # CI smoke
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common.hpp"
#include "express/fib.hpp"
#include "testbed/testbed.hpp"
#include "legacy_core.hpp"
#include "obs/obs.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "workload/churn.hpp"
#include "workload/topo_gen.hpp"

namespace {

using namespace express;
using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Seed-commit baselines for the sections whose "before" implementation
// cannot live in this binary (the fanout and churn paths run through
// the real Network, whose substrate the zero-alloc PR replaced).
// Measured at seed commit fd013b2 on the reference dev container with
// the exact scenario parameters below; regenerate by checking out the
// seed and running this bench (see EXPERIMENTS.md §CORE). Zero means
// "not captured" and suppresses the comparison in the JSON.
constexpr double kSeedFanoutNsPerHop = 241.0;
constexpr double kSeedChurnWallS = 2.042;
constexpr double kSeedSchedulerEventsPerSec = 6780934;

// ---------------------------------------------------------------------
// 1. Scheduler microbench
// ---------------------------------------------------------------------
//
// Rounds of batched schedule -> cancel-a-slice -> drain. The closure is
// transmit-shaped — it captures a 64-byte packet-sized blob plus a
// counter reference, like the link-delivery events that dominate every
// run — so each scheduler pays its real per-event cost (the seed design
// heap-allocates such a closure at schedule time and clones it again in
// the priority_queue's copy-on-pop). The cancel mix (1 in 8 events is a
// decoy that never fires) exercises the handle machinery the protocol
// timers lean on. Identical code runs against both schedulers; only the
// types differ.

struct SchedulerScore {
  double events_per_sec = 0;
  std::uint64_t fired = 0;
};

using PacketBlob = std::array<std::uint8_t, 64>;

SchedulerScore measure_scheduler_new(std::uint64_t target_events) {
  sim::Scheduler s;
  std::uint64_t fired = 0;
  PacketBlob blob{};
  blob[0] = 1;
  std::vector<sim::EventHandle> decoys;
  const std::uint64_t batch = 4096;
  std::int64_t t = 1;
  const auto t0 = Clock::now();
  for (std::uint64_t done = 0; done < target_events; done += batch) {
    decoys.clear();
    for (std::uint64_t i = 0; i < batch; ++i) {
      const sim::Time when{t + static_cast<std::int64_t>(i)};
      s.schedule_at(when, [&fired, blob] { fired += blob[0]; });
      if ((i & 7) == 0) {
        decoys.push_back(s.schedule_at(when, [&fired, blob] { fired += blob[0]; }));
      }
    }
    for (auto& h : decoys) h.cancel();
    s.run();
    t += static_cast<std::int64_t>(batch);
  }
  const double secs = elapsed_s(t0);
  return {static_cast<double>(fired) / secs, fired};
}

SchedulerScore measure_scheduler_legacy(std::uint64_t target_events) {
  bench::legacy::Scheduler s;
  std::uint64_t fired = 0;
  PacketBlob blob{};
  blob[0] = 1;
  std::vector<bench::legacy::EventHandle> decoys;
  const std::uint64_t batch = 4096;
  std::int64_t t = 1;
  const auto t0 = Clock::now();
  for (std::uint64_t done = 0; done < target_events; done += batch) {
    decoys.clear();
    for (std::uint64_t i = 0; i < batch; ++i) {
      const sim::Time when{t + static_cast<std::int64_t>(i)};
      s.schedule_at(when, [&fired, blob] { fired += blob[0]; });
      if ((i & 7) == 0) {
        decoys.push_back(s.schedule_at(when, [&fired, blob] { fired += blob[0]; }));
      }
    }
    for (auto& h : decoys) h.cancel();
    s.run();
    t += static_cast<std::int64_t>(batch);
  }
  const double secs = elapsed_s(t0);
  return {static_cast<double>(fired) / secs, fired};
}

// ---------------------------------------------------------------------
// 1b. FIB lookup: FlatFib vs unordered_map reference
// ---------------------------------------------------------------------

struct FibScore {
  double lookups_per_sec = 0;
  double unordered_lookups_per_sec = 0;
  std::uint64_t entries = 0;
  std::uint64_t found = 0;  ///< hit count (keeps the loops honest)
};

/// The pre-rewrite FIB shape: identical lookup semantics over the
/// node-allocating container the flat table replaced.
struct UnorderedFibRef {
  std::unordered_map<ip::ChannelId, FibEntry> table;
  FibStats stats;
  const net::InterfaceSet* lookup(const ip::ChannelId& ch, std::uint32_t iif) {
    ++stats.lookups;
    auto it = table.find(ch);
    if (it == table.end()) {
      ++stats.no_entry_drops;
      return nullptr;
    }
    if (it->second.iif != iif) {
      ++stats.rpf_drops;
      return nullptr;
    }
    ++stats.hits;
    return &it->second.oifs;
  }
};

ip::ChannelId fib_probe_channel(std::uint32_t k) {
  return ip::ChannelId{ip::Address{0x0A000000u + (k % 251u)},
                       ip::Address::single_source(k)};
}

template <typename FibLike>
double fib_probe_rate(FibLike& fib, std::uint32_t entries,
                      std::uint64_t lookups, std::uint64_t* found) {
  // LCG-strided probe stream, ~1 miss in 4 (the churn scenario's mix of
  // forwarding hits and no-entry/RPF drops), identical for both tables.
  const std::uint32_t key_space = entries + entries / 3;
  std::uint32_t x = 12345;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < lookups; ++i) {
    x = x * 1664525u + 1013904223u;
    const std::uint32_t k = (x >> 8) % key_space;
    if (fib.lookup(fib_probe_channel(k), k % 8u) != nullptr) ++*found;
  }
  return static_cast<double>(lookups) / elapsed_s(t0);
}

FibScore measure_fib(bool quick) {
  const std::uint32_t entries = quick ? 20'000 : 100'000;
  const std::uint64_t lookups = quick ? 1'000'000 : 10'000'000;
  express::Fib flat;
  UnorderedFibRef ref;
  for (std::uint32_t i = 0; i < entries; ++i) {
    const ip::ChannelId ch = fib_probe_channel(i);
    FibEntry& e = flat.upsert(ch);
    e.iif = i % 8u;
    e.oifs.set((i % 8u) + 1u);
    ref.table[ch] = e;
  }
  FibScore score;
  score.entries = entries;
  // Interleaved best-of rounds, same discipline as the scheduler A/B.
  std::uint64_t flat_found = 0;
  std::uint64_t ref_found = 0;
  for (int round = 0; round < (quick ? 1 : 3); ++round) {
    flat_found = 0;
    ref_found = 0;
    const double a = fib_probe_rate(flat, entries, lookups, &flat_found);
    const double b = fib_probe_rate(ref, entries, lookups, &ref_found);
    if (a > score.lookups_per_sec) score.lookups_per_sec = a;
    if (b > score.unordered_lookups_per_sec) {
      score.unordered_lookups_per_sec = b;
    }
  }
  if (flat_found != ref_found) {
    std::fprintf(stderr, "bench_core: FIB probe divergence (%llu vs %llu)\n",
                 static_cast<unsigned long long>(flat_found),
                 static_cast<unsigned long long>(ref_found));
  }
  score.found = flat_found;
  return score;
}

// ---------------------------------------------------------------------
// 1c. Timer wheel vs heap-only scheduler
// ---------------------------------------------------------------------

struct WheelScore {
  double events_per_sec = 0;
  double heap_only_events_per_sec = 0;
  std::uint64_t fired = 0;
};

double timer_load_rate(bool use_wheel, std::uint32_t timers,
                       std::uint32_t periods, std::uint64_t* fired_out) {
  // The load the wheel exists for: a standing population of periodic
  // 30 s refresh timers (UDP soft-state refresh, counting timeouts).
  // Heap-only re-arms sift through a `timers`-deep heap on every fire;
  // the wheel parks each re-arm at O(1) and cascades lazily.
  sim::Scheduler s(use_wheel);
  std::uint64_t fired = 0;
  struct Refresh {
    sim::Scheduler* s;
    std::uint64_t* fired;
    void operator()() const {
      ++*fired;
      s->schedule_after(sim::seconds(30), *this);
    }
  };
  const std::int64_t spread = sim::seconds(30).count();
  for (std::uint32_t i = 0; i < timers; ++i) {
    const sim::Time first{1 + (spread * i) / timers};
    s.schedule_at(first, Refresh{&s, &fired});
  }
  const auto t0 = Clock::now();
  s.run_until(sim::seconds(30) * periods);
  const double secs = elapsed_s(t0);
  *fired_out = fired;
  return static_cast<double>(fired) / secs;
}

WheelScore measure_timer_wheel(bool quick) {
  const std::uint32_t timers = quick ? 5'000 : 20'000;
  const std::uint32_t periods = quick ? 10 : 25;
  WheelScore score;
  std::uint64_t fired_wheel = 0;
  std::uint64_t fired_heap = 0;
  for (int round = 0; round < (quick ? 1 : 3); ++round) {
    const double a = timer_load_rate(true, timers, periods, &fired_wheel);
    const double b = timer_load_rate(false, timers, periods, &fired_heap);
    if (a > score.events_per_sec) score.events_per_sec = a;
    if (b > score.heap_only_events_per_sec) {
      score.heap_only_events_per_sec = b;
    }
  }
  if (fired_wheel != fired_heap) {
    std::fprintf(stderr, "bench_core: timer load divergence (%llu vs %llu)\n",
                 static_cast<unsigned long long>(fired_wheel),
                 static_cast<unsigned long long>(fired_heap));
  }
  score.fired = fired_wheel;
  return score;
}

// ---------------------------------------------------------------------
// 2. Packet fan-out through the real stack
// ---------------------------------------------------------------------

struct FanoutScore {
  double ns_per_hop = 0;
  std::uint64_t hops = 0;
  std::uint64_t packets = 0;
};

FanoutScore measure_fanout(std::uint64_t sends) {
  Testbed bed(workload::make_star(256, 1));
  const ip::ChannelId channel = bed.source().allocate_channel();
  for (std::size_t i = 0; i < bed.receiver_count(); ++i) {
    bed.receiver(i).new_subscription(channel);
  }
  bed.run_for(sim::seconds(2));  // settle joins

  const std::uint64_t hops_before = bed.net().stats().packets_sent;
  const std::vector<std::uint8_t> header(200, 0xAB);
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < sends; ++i) {
    bed.source().send(channel, 1000, i, header);
    bed.run_for(sim::milliseconds(10));
  }
  const double secs = elapsed_s(t0);
  const std::uint64_t hops = bed.net().stats().packets_sent - hops_before;
  return {secs / static_cast<double>(hops) * 1e9, hops, sends};
}

// ---------------------------------------------------------------------
// 3. 10k-subscriber churn scenario, end to end
// ---------------------------------------------------------------------

struct ChurnScore {
  double wall_s = 0;
  double sim_events_per_sec = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t subscribers = 0;
  // Deterministic outcome counters: any substrate rewrite must
  // reproduce these exactly for a given seed (see test_determinism).
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t total_link_bytes = 0;
  std::uint64_t data_delivered = 0;
  // Per-module event counts summed over all routers (the layered-stack
  // view: where the work went during the scenario).
  std::uint64_t fwd_packets = 0;       ///< ForwardingPlane inputs replicated
  std::uint64_t fwd_copies = 0;        ///< ForwardingPlane output copies
  std::uint64_t sub_subscribes = 0;    ///< SubscriptionTable joins
  std::uint64_t sub_unsubscribes = 0;  ///< SubscriptionTable leaves
  std::uint64_t counting_rounds = 0;   ///< CountingEngine rounds started
  std::uint64_t transport_messages = 0;  ///< ecmp::Transport messages sent
};

ChurnScore measure_churn(bool quick) {
  // 4-ary router tree: depth 5 => 1024 leaf routers x 10 hosts = 10240
  // receivers over 1365 routers (quick: depth 3 => 640 receivers).
  const std::uint32_t depth = quick ? 3 : 5;
  Testbed bed(workload::make_kary_tree(4, depth, {}, 10));
  const ip::ChannelId channel = bed.source().allocate_channel();
  const std::uint32_t receivers =
      static_cast<std::uint32_t>(bed.receiver_count());

  sim::Rng rng(42);
  const sim::Duration horizon = sim::seconds(30);
  const auto events = workload::poisson_churn(
      receivers, horizon, sim::seconds(15), sim::seconds(10), rng);

  const auto t0 = Clock::now();
  auto& sched = bed.net().scheduler();
  for (const auto& ev : events) {
    sched.schedule_at(ev.at, [&bed, &channel, ev] {
      if (ev.join) {
        bed.receiver(ev.host_index).new_subscription(channel);
      } else {
        bed.receiver(ev.host_index).delete_subscription(channel);
      }
    });
  }
  const std::vector<std::uint8_t> header(64, 0xCD);
  std::uint64_t seq = 0;
  for (sim::Time at = sim::milliseconds(100); at < horizon;
       at += sim::milliseconds(100)) {
    sched.schedule_at(at, [&bed, &channel, &header, s = seq++] {
      bed.source().send(channel, 1200, s, header);
    });
  }
  bed.net().run();
  const double secs = elapsed_s(t0);

  ChurnScore score;
  score.wall_s = secs;
  score.sim_events = sched.executed_events();
  score.sim_events_per_sec = static_cast<double>(score.sim_events) / secs;
  score.subscribers = receivers;
  // The per-module blocks come straight from the metrics registry (one
  // sum per metric name instead of a per-router accessor walk); the
  // JSON keys and semantics are unchanged.
  const obs::Registry& reg = bed.net().obs().registry;
  score.packets_sent = bed.net().stats().packets_sent;
  score.bytes_sent = bed.net().stats().bytes_sent;
  score.total_link_bytes = bed.net().total_link_bytes();
  score.data_delivered = reg.sum("express.host.data_received");
  score.fwd_packets = reg.sum("express.fwd.data_packets_forwarded");
  score.fwd_copies = reg.sum("express.fwd.data_copies_sent");
  score.sub_subscribes = reg.sum("express.sub.subscribe_events");
  score.sub_unsubscribes = reg.sum("express.sub.unsubscribe_events");
  score.counting_rounds = reg.sum("express.counting.rounds_started");
  score.transport_messages = reg.sum("ecmp.transport.counts_sent") +
                             reg.sum("ecmp.transport.queries_sent") +
                             reg.sum("ecmp.transport.responses_sent");
  return score;
}

// ---------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------

void write_json(const std::string& path, bool quick, const SchedulerScore& nw,
                const SchedulerScore& old, const FibScore& fib,
                const WheelScore& wheel, const FanoutScore& fan,
                const ChurnScore& churn) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_core: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_core\",\n");
  std::fprintf(f, "  \"version\": 1,\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"scheduler\": {\n");
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n", nw.events_per_sec);
  std::fprintf(f, "    \"legacy_events_per_sec\": %.0f,\n", old.events_per_sec);
  std::fprintf(f, "    \"speedup_vs_legacy\": %.2f,\n",
               nw.events_per_sec / old.events_per_sec);
  std::fprintf(f, "    \"events\": %llu\n",
               static_cast<unsigned long long>(nw.fired));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fib\": {\n");
  std::fprintf(f, "    \"entries\": %llu,\n",
               static_cast<unsigned long long>(fib.entries));
  std::fprintf(f, "    \"lookups_per_sec\": %.0f,\n", fib.lookups_per_sec);
  std::fprintf(f, "    \"unordered_lookups_per_sec\": %.0f,\n",
               fib.unordered_lookups_per_sec);
  std::fprintf(f, "    \"speedup_vs_unordered\": %.2f\n",
               fib.lookups_per_sec / fib.unordered_lookups_per_sec);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"timer_wheel\": {\n");
  std::fprintf(f, "    \"events_per_sec\": %.0f,\n", wheel.events_per_sec);
  std::fprintf(f, "    \"heap_only_events_per_sec\": %.0f,\n",
               wheel.heap_only_events_per_sec);
  std::fprintf(f, "    \"speedup_vs_heap\": %.2f,\n",
               wheel.events_per_sec / wheel.heap_only_events_per_sec);
  std::fprintf(f, "    \"events\": %llu\n",
               static_cast<unsigned long long>(wheel.fired));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fanout\": {\n");
  std::fprintf(f, "    \"ns_per_hop\": %.1f,\n", fan.ns_per_hop);
  std::fprintf(f, "    \"hops\": %llu,\n",
               static_cast<unsigned long long>(fan.hops));
  std::fprintf(f, "    \"sends\": %llu%s\n",
               static_cast<unsigned long long>(fan.packets),
               kSeedFanoutNsPerHop > 0 ? "," : "");
  if (kSeedFanoutNsPerHop > 0) {
    std::fprintf(f, "    \"seed_baseline_ns_per_hop\": %.1f,\n",
                 kSeedFanoutNsPerHop);
    std::fprintf(f, "    \"speedup_vs_seed\": %.2f\n",
                 kSeedFanoutNsPerHop / fan.ns_per_hop);
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"churn\": {\n");
  std::fprintf(f, "    \"subscribers\": %llu,\n",
               static_cast<unsigned long long>(churn.subscribers));
  std::fprintf(f, "    \"wall_s\": %.3f,\n", churn.wall_s);
  std::fprintf(f, "    \"sim_events\": %llu,\n",
               static_cast<unsigned long long>(churn.sim_events));
  std::fprintf(f, "    \"sim_events_per_sec\": %.0f,\n",
               churn.sim_events_per_sec);
  std::fprintf(f, "    \"packets_sent\": %llu,\n",
               static_cast<unsigned long long>(churn.packets_sent));
  std::fprintf(f, "    \"bytes_sent\": %llu,\n",
               static_cast<unsigned long long>(churn.bytes_sent));
  std::fprintf(f, "    \"total_link_bytes\": %llu,\n",
               static_cast<unsigned long long>(churn.total_link_bytes));
  std::fprintf(f, "    \"data_delivered\": %llu%s\n",
               static_cast<unsigned long long>(churn.data_delivered),
               (!quick && kSeedChurnWallS > 0) ? "," : "");
  if (!quick && kSeedChurnWallS > 0) {
    std::fprintf(f, "    \"seed_baseline_wall_s\": %.3f,\n", kSeedChurnWallS);
    std::fprintf(f, "    \"speedup_vs_seed\": %.2f\n",
                 kSeedChurnWallS / churn.wall_s);
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"modules\": {\n");
  std::fprintf(f, "    \"forwarding_packets\": %llu,\n",
               static_cast<unsigned long long>(churn.fwd_packets));
  std::fprintf(f, "    \"forwarding_copies\": %llu,\n",
               static_cast<unsigned long long>(churn.fwd_copies));
  std::fprintf(f, "    \"subscription_subscribes\": %llu,\n",
               static_cast<unsigned long long>(churn.sub_subscribes));
  std::fprintf(f, "    \"subscription_unsubscribes\": %llu,\n",
               static_cast<unsigned long long>(churn.sub_unsubscribes));
  std::fprintf(f, "    \"counting_rounds\": %llu,\n",
               static_cast<unsigned long long>(churn.counting_rounds));
  std::fprintf(f, "    \"transport_messages\": %llu\n",
               static_cast<unsigned long long>(churn.transport_messages));
  std::fprintf(f, "  }%s\n", kSeedSchedulerEventsPerSec > 0 ? "," : "");
  if (kSeedSchedulerEventsPerSec > 0) {
    std::fprintf(f,
                 "  \"seed_baseline_note\": \"seed numbers measured at the "
                 "pre-rewrite commit with identical scenario parameters; the "
                 "live legacy_* numbers re-measure the seed scheduler "
                 "replica in this binary\"\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace express::bench;
  bool quick = false;
  std::string out = "BENCH_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --out requires a path\n");
        return 2;
      }
      out = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\nusage: %s [--quick] [--out <path>]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }

  banner("CORE", "simulator substrate: scheduler, fan-out, churn");

  const std::uint64_t sched_events = quick ? 200'000 : 2'000'000;
  measure_scheduler_new(sched_events / 8);     // warm up caches/allocator
  measure_scheduler_legacy(sched_events / 8);
  // Interleave A/B rounds and keep each side's best, so a noisy
  // neighbor or a thermal dip cannot skew the ratio one way.
  SchedulerScore nw, old;
  for (int round = 0; round < (quick ? 1 : 3); ++round) {
    const SchedulerScore a = measure_scheduler_new(sched_events);
    const SchedulerScore b = measure_scheduler_legacy(sched_events);
    if (a.events_per_sec > nw.events_per_sec) nw = a;
    if (b.events_per_sec > old.events_per_sec) old = b;
  }

  const FibScore fib = measure_fib(quick);
  const WheelScore wheel = measure_timer_wheel(quick);
  const FanoutScore fan = measure_fanout(quick ? 200 : 2000);
  const ChurnScore churn = measure_churn(quick);

  Table table({"section", "metric", "value"});
  table.row({"scheduler", "events/sec", fmt(nw.events_per_sec / 1e6, 2) + "M"});
  table.row({"scheduler", "legacy events/sec",
             fmt(old.events_per_sec / 1e6, 2) + "M"});
  table.row({"scheduler", "speedup vs legacy",
             fmt(nw.events_per_sec / old.events_per_sec, 2) + "x"});
  table.row({"fib", "lookups/sec", fmt(fib.lookups_per_sec / 1e6, 2) + "M"});
  table.row({"fib", "unordered_map lookups/sec",
             fmt(fib.unordered_lookups_per_sec / 1e6, 2) + "M"});
  table.row({"fib", "speedup vs unordered",
             fmt(fib.lookups_per_sec / fib.unordered_lookups_per_sec, 2) + "x"});
  table.row({"timer_wheel", "events/sec",
             fmt(wheel.events_per_sec / 1e6, 2) + "M"});
  table.row({"timer_wheel", "heap-only events/sec",
             fmt(wheel.heap_only_events_per_sec / 1e6, 2) + "M"});
  table.row({"timer_wheel", "speedup vs heap",
             fmt(wheel.events_per_sec / wheel.heap_only_events_per_sec, 2) +
                 "x"});
  table.row({"fanout", "ns/hop", fmt(fan.ns_per_hop, 1)});
  table.row({"fanout", "hops", fmt_int(fan.hops)});
  table.row({"churn", "subscribers", fmt_int(churn.subscribers)});
  table.row({"churn", "wall s", fmt(churn.wall_s, 3)});
  table.row({"churn", "sim events", fmt_int(churn.sim_events)});
  table.row({"churn", "events/sec", fmt(churn.sim_events_per_sec / 1e6, 2) + "M"});
  table.row({"churn", "packets_sent", fmt_int(churn.packets_sent)});
  table.row({"churn", "bytes_sent", fmt_int(churn.bytes_sent)});
  table.row({"churn", "data_delivered", fmt_int(churn.data_delivered)});
  table.row({"modules", "forwarding copies", fmt_int(churn.fwd_copies)});
  table.row({"modules", "subscription churn",
             fmt_int(churn.sub_subscribes + churn.sub_unsubscribes)});
  table.row({"modules", "transport messages",
             fmt_int(churn.transport_messages)});
  if (kSeedChurnWallS > 0 && !quick) {
    table.row({"churn", "seed wall s", fmt(kSeedChurnWallS, 3)});
    table.row({"churn", "speedup vs seed", fmt(kSeedChurnWallS / churn.wall_s, 2) + "x"});
  }
  table.print();
  note("scheduler speedup is measured live against the seed replica;");
  note("fanout/churn seed baselines were captured at the seed commit.");

  write_json(out, quick, nw, old, fib, wheel, fan, churn);
  return 0;
}
