// F1 (Fig. 1): channel vs group addressing semantics.
//
// Two sources transmit to the same destination address E. Under the
// EXPRESS channel model a subscriber of (S1, E) hears only S1; under
// the group model (DVMRP baseline) a member of E hears both — plus
// anything an unauthorized third sender injects.
#include <memory>

#include "baseline/dvmrp.hpp"
#include "baseline/group_host.hpp"
#include "common.hpp"
#include "testbed/testbed.hpp"

namespace {

using namespace express;

struct GroupRun {
  std::uint64_t from_s1 = 0;
  std::uint64_t from_s2 = 0;
  std::uint64_t from_attacker = 0;
};

GroupRun run_group_model() {
  auto generated = workload::make_star(3, 1);
  auto roles = generated;  // ids survive the move below
  auto network =
      std::make_unique<net::Network>(std::move(generated.topology));
  std::vector<baseline::DvmrpRouter*> routers;
  for (net::NodeId r : roles.routers) {
    routers.push_back(&network->attach<baseline::DvmrpRouter>(r));
  }
  auto& s1 = network->attach<baseline::GroupHost>(roles.source_host);
  auto& member = network->attach<baseline::GroupHost>(roles.receiver_hosts[0]);
  auto& s2 = network->attach<baseline::GroupHost>(roles.receiver_hosts[1]);
  auto& attacker =
      network->attach<baseline::GroupHost>(roles.receiver_hosts[2]);

  const ip::Address group(225, 0, 0, 1);
  member.join_group(group);
  network->run_until(sim::seconds(1));
  for (int i = 0; i < 10; ++i) s1.send_to_group(group, 100, 1);
  for (int i = 0; i < 10; ++i) s2.send_to_group(group, 100, 2);
  for (int i = 0; i < 10; ++i) attacker.send_to_group(group, 100, 3);
  network->run_until(sim::seconds(2));

  GroupRun out;
  for (const auto& d : member.deliveries()) {
    if (d.source == s1.address()) ++out.from_s1;
    if (d.source == s2.address()) ++out.from_s2;
    if (d.source == attacker.address()) ++out.from_attacker;
  }
  return out;
}

GroupRun run_channel_model() {
  Testbed bed(workload::make_star(3, 1));
  auto& s1 = bed.source();
  auto& member = bed.receiver(0);
  auto& s2 = bed.receiver(1);
  auto& attacker = bed.receiver(2);

  // Both sources pick the *same* E — unrelated channels under EXPRESS.
  const ip::Address e = ip::Address::single_source(7);
  const ip::ChannelId ch1{s1.address(), e};
  const ip::ChannelId ch2{s2.address(), e};
  member.new_subscription(ch1);
  bed.run_for(sim::seconds(1));
  for (int i = 0; i < 10; ++i) s1.send(ch1, 100, 1);
  for (int i = 0; i < 10; ++i) s2.send(ch2, 100, 2);
  for (int i = 0; i < 10; ++i) {
    attacker.send(ip::ChannelId{attacker.address(), e}, 100, 3);
  }
  bed.run_for(sim::seconds(1));

  GroupRun out;
  for (const auto& d : member.deliveries()) {
    if (d.channel.source == s1.address()) ++out.from_s1;
    if (d.channel.source == s2.address()) ++out.from_s2;
    if (d.channel.source == attacker.address()) ++out.from_attacker;
  }
  return out;
}

}  // namespace

int main() {
  using namespace express::bench;
  banner("F1 / Fig. 1", "channel vs group addressing");
  note("one receiver; S1 is the wanted source; S2 and an attacker also send");
  note("to the same destination address E (10 packets each).");

  const GroupRun group = run_group_model();
  const GroupRun channel = run_channel_model();

  Table table({"model", "recv from S1", "recv from S2", "recv from attacker"});
  table.row({"group (DVMRP)", fmt_int(group.from_s1), fmt_int(group.from_s2),
             fmt_int(group.from_attacker)});
  table.row({"channel (EXPRESS)", fmt_int(channel.from_s1),
             fmt_int(channel.from_s2), fmt_int(channel.from_attacker)});
  table.print();
  note("paper: a channel (S,E) is unrelated to (S',E); only the designated");
  note("source reaches subscribers — the group model delivers every sender.");
  return 0;
}
