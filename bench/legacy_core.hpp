// Frozen replica of the seed discrete-event scheduler (pre zero-alloc
// rewrite), kept verbatim so bench_core can measure the slab scheduler
// against the exact implementation it replaced, on the same machine, in
// the same binary. Do not "improve" this file: its value is that it
// stays the historical baseline.
//
// Seed design being preserved here:
//   * one std::make_shared<bool> liveness cell per event,
//   * a std::function<void()> closure (heap-allocated past the SBO),
//   * std::priority_queue storage with a full Entry *copy* on every pop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace express::bench::legacy {

class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }

  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] sim::Time now() const { return now_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  EventHandle schedule_at(sim::Time when, Action action) {
    if (when < now_) when = now_;
    auto alive = std::make_shared<bool>(true);
    queue_.push(Entry{when, next_seq_++, alive, std::move(action)});
    return EventHandle{std::move(alive)};
  }

  EventHandle schedule_after(sim::Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  std::uint64_t run_until(sim::Time deadline) {
    std::uint64_t ran = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      Entry e = queue_.top();  // seed behavior: copy out, closure and all
      queue_.pop();
      if (!*e.alive) continue;
      *e.alive = false;
      now_ = e.when;
      e.action();
      ++executed_;
      ++ran;
    }
    if (deadline != sim::kNever && now_ < deadline) now_ = deadline;
    return ran;
  }

  std::uint64_t run() { return run_until(sim::kNever); }

 private:
  struct Entry {
    sim::Time when{};
    std::uint64_t seq = 0;
    std::shared_ptr<bool> alive;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  sim::Time now_{0};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace express::bench::legacy
