// S53 (§5.3): the cost of state maintenance — the paper's measured
// experiment re-run on today's hardware.
//
// The paper ran user-level TCP ECMP on a 400 MHz Pentium-II with 8
// neighbors churning subscriptions: ~4,500 events/s at 4% CPU (~3,500
// cycles/event), 33,000 events/s sustained at 43% (~5,200 cycles/event),
// ~2,700 cycles per subscribe and ~3,300 per unsubscribe. We drive the
// same event pipeline — wire decode, hashed channel lookup, state
// allocation, FIB manipulation, upstream Count emission — through
// ExpressRouter::handle_packet and report the modern equivalents, plus
// the analytic million-channel scenario.
#include <chrono>

#include "common.hpp"
#include "costmodel/maintenance_cost.hpp"
#include "ecmp/codec.hpp"
#include "express/router.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"

namespace {

using namespace express;

/// Discards everything: stands in for neighbors whose processing cost
/// must not pollute the core router's measurement.
class SinkNode : public net::Node {
 public:
  SinkNode(net::Network& network, net::NodeId id) : net::Node(network, id) {}
  void handle_packet(const net::Packet&, std::uint32_t) override {}
};

#if defined(__x86_64__)
std::uint64_t rdtsc() { return __builtin_ia32_rdtsc(); }
#else
std::uint64_t rdtsc() { return 0; }
#endif

struct Measurement {
  double seconds = 0;
  std::uint64_t cycles = 0;
  std::uint64_t events = 0;
  [[nodiscard]] double events_per_second() const { return events / seconds; }
  [[nodiscard]] double ns_per_event() const { return seconds / events * 1e9; }
  [[nodiscard]] double cycles_per_event() const {
    return cycles == 0 ? 0 : static_cast<double>(cycles) / events;
  }
};

}  // namespace

int main() {
  using namespace express::bench;

  banner("S53 / §5.3", "the cost of state maintenance");

  // Core router with 8 neighbor routers (the paper's "eight active
  // Ethernet neighbors") plus an upstream side: sources live behind
  // neighbor 8, so joins propagate upstream like in a real core.
  net::Topology topo;
  const net::NodeId core = topo.add_router("core");
  std::vector<net::NodeId> neighbors;
  for (int i = 0; i < 8; ++i) {
    neighbors.push_back(topo.add_router("n" + std::to_string(i)));
    topo.add_link(core, neighbors.back());
  }
  const net::NodeId upstream = topo.add_router("up");
  topo.add_link(core, upstream);
  const net::NodeId src_host = topo.add_host("src");
  topo.add_link(upstream, src_host);

  net::Network network(std::move(topo));
  auto& router = network.attach<ExpressRouter>(core);
  for (net::NodeId n : neighbors) network.attach<SinkNode>(n);
  network.attach<SinkNode>(upstream);
  network.attach<SinkNode>(src_host);

  const ip::Address src = network.topology().node(src_host).address;
  const std::uint32_t kChannels = 100'000;

  // Pre-encode subscribe/unsubscribe packets for a cycling channel set;
  // the measured loop then exercises decode + lookup + state + FIB +
  // upstream send per event, like the paper's.
  auto make_packet = [&](std::uint32_t channel_index, std::int64_t count,
                         net::NodeId from) {
    ecmp::Count msg;
    msg.channel = ip::ChannelId{src, ip::Address::single_source(channel_index)};
    msg.count = count;
    net::Packet packet;
    packet.src = network.topology().node(from).address;
    packet.dst = network.topology().node(core).address;
    packet.protocol = ip::Protocol::kEcmp;
    packet.payload = ecmp::encode(ecmp::Message{msg});
    return packet;
  };

  // One pass = one real transition per channel (subscribe everything or
  // unsubscribe everything), each event from the neighbor ch % 8, so
  // every measured event does the full create-join or erase-prune work
  // — no cheap refreshes.
  auto pass = [&](bool subscribe_phase, Measurement& m) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t c0 = rdtsc();
    for (std::uint32_t ch = 0; ch < kChannels; ++ch) {
      const std::uint32_t iface = ch % 8;
      net::Packet packet =
          make_packet(ch, subscribe_phase ? 1 : 0, neighbors[iface]);
      router.handle_packet(packet, iface);
      ++m.events;
    }
    m.cycles += rdtsc() - c0;
    m.seconds += std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    // Drain queued upstream Counts (to sinks) outside the timed window.
    network.run();
  };

  // Warm-up round, then ten measured rounds of full churn (1M subscribe
  // + 1M unsubscribe transitions).
  {
    Measurement warm;
    pass(true, warm);
    pass(false, warm);
  }
  Measurement sub, unsub;
  for (int round = 0; round < 10; ++round) {
    pass(true, sub);
    pass(false, unsub);
  }

  Table table({"phase", "events/s", "ns/event", "cycles/event",
               "paper (400MHz P-II)"});
  table.row({"subscribe", fmt(sub.events_per_second() / 1e6, 2) + "M",
             fmt(sub.ns_per_event(), 0), fmt(sub.cycles_per_event(), 0),
             "~2700 cycles"});
  table.row({"unsubscribe", fmt(unsub.events_per_second() / 1e6, 2) + "M",
             fmt(unsub.ns_per_event(), 0), fmt(unsub.cycles_per_event(), 0),
             "~3300 cycles"});
  table.print();

  using namespace express::costmodel;
  const double cycles_per_event =
      (sub.cycles_per_event() + unsub.cycles_per_event()) / 2;
  note("paper sustained 33,000 ev/s at 43% CPU (~5,200 cycles/event);");
  note("at our measured cost, the paper's 4,500 ev/s scenario would use " +
       fmt(cpu_utilization(4500, cycles_per_event, 3e9) * 100, 3) +
       "% of a 3 GHz core.");

  banner("S53 / §5.3", "million-channel analytic scenario");
  const auto load = maintenance_load();
  Table scenario({"quantity", "value", "paper"});
  scenario.row({"Count events received/s",
                fmt(load.events_received_per_second, 0), "3,333"});
  scenario.row({"Count events sent/s", fmt(load.events_sent_per_second, 0),
                "1,667"});
  scenario.row({"total events/s", fmt(load.total_events_per_second, 0),
                "~5,000"});
  scenario.row({"16-byte Counts per 1480 B segment",
                fmt(load.messages_per_segment, 0), "92"});
  scenario.row({"segments received/s", fmt(load.segments_received_per_second, 1),
                "36"});
  scenario.row({"control traffic in",
                fmt(load.control_bits_received_per_second / 1e3, 0) + " kb/s",
                "424 kb/s"});
  scenario.print();

  // Codec cross-check of the segment-packing claim.
  ecmp::Count probe;
  probe.channel = ip::ChannelId{src, ip::Address::single_source(1)};
  probe.count = 1;
  note("codec: encoded unsolicited Count = " +
       fmt_int(ecmp::encoded_size(ecmp::Message{probe})) + " B, " +
       fmt_int(ecmp::messages_per_segment(ecmp::Message{probe})) +
       " per segment");
  return 0;
}
